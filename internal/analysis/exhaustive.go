package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// The exhaustive pass turns the repo's enum idiom into a checked
// contract. The model is full of small uint8 enumerations — isa.Op,
// isa.Format, obs.Kind, issue.StallReason, the engines' internal phase
// types — and a switch that silently falls through for a member it
// forgot is exactly how a new opcode or stall reason slips past the
// simulator unmodelled (the paper's issue-rate tables are only
// comparable if every instruction class is handled everywhere).
//
// Rule: an expression switch whose tag is a named type with underlying
// uint8, declared in a module package with at least three constants of
// that type, must either cover every declared constant value or carry
// an explicit default clause. Sentinel count constants (names starting
// with "Num": NumOps, NumKinds, ...) mark the end of a const block and
// are not required. Type switches and expressionless switches are out
// of scope.
//
// The fix is to add the missing cases (preferred — it forces the new
// member through every consumer) or an explicit default documenting
// why the remaining members share a fallback.

// NewExhaustive returns the exhaustive pass. enumScope lists the
// package-path prefixes whose named uint8 types count as enums (the
// module path); the package under analysis always counts.
func NewExhaustive(enumScope []string) *Pass {
	return &Pass{
		Name: "exhaustive",
		Doc:  "switches over module uint8 enums cover every member or carry a default",
		Run: func(pkg *Package) []Finding {
			var out []Finding
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					if missing, tname := missingEnumCases(pkg, sw, enumScope); len(missing) > 0 {
						out = append(out, Finding{
							Pass: "exhaustive",
							Pos:  pkg.Pos(sw),
							Message: fmt.Sprintf("switch over %s is not exhaustive: missing %s; add the cases or an explicit default",
								tname, strings.Join(missing, ", ")),
						})
					}
					return true
				})
			}
			return out
		},
	}
}

// missingEnumCases returns the names of enum members a switch fails to
// cover (nil when the tag is not an enum or a default is present) and
// the enum type's name.
func missingEnumCases(pkg *Package, sw *ast.SwitchStmt, enumScope []string) ([]string, string) {
	tv, ok := pkg.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return nil, ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil, ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Uint8 {
		return nil, ""
	}
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return nil, ""
	}
	if declPkg != pkg.Types && !inScope(declPkg.Path(), enumScope) {
		return nil, ""
	}
	members := enumMembers(declPkg, named)
	if len(members) < 3 {
		return nil, ""
	}
	covered := map[int64]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return nil, "" // explicit default satisfies the rule
		}
		for _, e := range cc.List {
			if v, ok := constVal(pkg, e); ok {
				covered[v] = true
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	sort.Strings(missing)
	return missing, named.Obj().Name()
}

type enumMember struct {
	name string
	val  int64
}

// enumMembers lists the constants of type named declared in its
// defining package, excluding "Num*" count sentinels. Aliased values
// appear once per name; covering the value covers all its names.
func enumMembers(declPkg *types.Package, named *types.Named) []enumMember {
	var out []enumMember
	scope := declPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "Num") {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok {
			out = append(out, enumMember{name, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].val != out[j].val {
			return out[i].val < out[j].val
		}
		return out[i].name < out[j].name
	})
	return out
}

// constVal evaluates a case expression to its constant value.
func constVal(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
