package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewHTTPContract returns the httpcontract pass, restricted to the
// given import-path prefixes (the HTTP API package).
//
// The API's response contract — one status code per request, JSON
// error envelopes, Content-Type before the body, 499 for a client that
// went away — is what lets clients, the access log, and the per-route
// metrics agree on what happened. Each rule catches a way handlers
// drift from it:
//
//   - exactly one response per path: a second WriteHeader is a logged
//     "superfluous response.WriteHeader" at best; the classic cause is
//     a branch that writes an error and forgets to return. The pass
//     classifies every package function that can commit a response
//     (directly or through a helper like writeError) and walks each
//     handler's statement paths for write-after-write.
//   - raw http.Error bypasses the JSON error envelope; errors go
//     through the shared writer.
//   - Content-Type must be set before the status/body is committed —
//     headers set after WriteHeader are silently dropped.
//   - a branch that handles errors.Is(err, context.Canceled) by
//     writing a response must map it to 499
//     (StatusClientClosedRequest), not recycle another status.
//
// The commit classifier is a package-local fixpoint: a function
// commits if it calls WriteHeader/Write on a ResponseWriter or any
// package function already known to commit, and always-commits if a
// commit is unconditional. The path walk understands the repo's guard
// idiom — `if !s.decode(w, r, &v) { return }` and
// `j := s.lookupJob(w, r); if j == nil { return }` count as handled,
// because the committing callee's result gates an immediate return.
func NewHTTPContract(scope ...string) *Pass {
	p := &Pass{
		Name: "httpcontract",
		Doc:  "one status per path, envelope error writer, Content-Type before commit, 499 on client cancel",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		hc := &httpContract{pkg: pkg, pass: p.Name}
		hc.classify()
		return hc.check()
	}
	return p
}

type httpContract struct {
	pkg  *Package
	pass string
	out  []Finding

	commits map[types.Object]bool // function can write a response
	always  map[types.Object]bool // function writes one unconditionally
}

func (hc *httpContract) add(n ast.Node, format string, args ...any) {
	hc.out = append(hc.out, Finding{Pass: hc.pass, Pos: hc.pkg.Pos(n), Message: fmt.Sprintf(format, args...)})
}

// hcKind is the commit classification of one call or statement.
type hcKind int

const (
	hcNone hcKind = iota
	hcMaybe
	hcAlways
)

// classify runs the package-local commit fixpoint.
func (hc *httpContract) classify() {
	hc.commits = map[types.Object]bool{}
	hc.always = map[types.Object]bool{}
	decls := funcDecls(hc.pkg)
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj := hc.pkg.Info.Defs[fd.Name]
			if obj == nil || fd.Body == nil {
				continue
			}
			commits := hc.blockKind(fd.Body) != hcNone
			always := hc.blockAlways(fd.Body.List)
			if commits && !hc.commits[obj] {
				hc.commits[obj] = true
				changed = true
			}
			if always && !hc.always[obj] {
				hc.always[obj] = true
				changed = true
			}
		}
	}
}

// callKind classifies one call expression. Only status commits count:
// a raw w.Write after WriteHeader is the body going out, not a second
// response (the header-order check owns raw writes).
func (hc *httpContract) callKind(call *ast.CallExpr) hcKind {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "WriteHeader" && isResponseWriter(hc.pkg.Info.TypeOf(sel.X)) {
			return hcAlways
		}
	}
	if pkgPath, name, ok := pkgLevelCallee(hc.pkg.Info, call); ok &&
		pkgPath == "net/http" && name == "Error" {
		return hcAlways
	}
	if obj := calleeObject(hc.pkg, call); obj != nil && hc.commits[obj] {
		if hc.always[obj] {
			return hcAlways
		}
		return hcMaybe
	}
	return hcNone
}

// nodeKind scans a node (skipping nested literals) for the strongest
// commit it contains.
func (hc *httpContract) nodeKind(n ast.Node) hcKind {
	if n == nil {
		return hcNone
	}
	kind := hcNone
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			if k := hc.callKind(call); k > kind {
				kind = k
			}
		}
		return true
	})
	return kind
}

// blockKind is nodeKind over a whole block.
func (hc *httpContract) blockKind(b *ast.BlockStmt) hcKind { return hc.nodeKind(b) }

// blockAlways reports whether the statement sequence commits a
// response on every path that reaches its end.
func (hc *httpContract) blockAlways(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && hc.callKind(call) == hcAlways {
				return true
			}
		case *ast.IfStmt:
			if s.Else != nil && hc.blockAlways(s.Body.List) {
				if eb, ok := s.Else.(*ast.BlockStmt); ok && hc.blockAlways(eb.List) {
					return true
				}
			}
		case *ast.BlockStmt:
			if hc.blockAlways(s.List) {
				return true
			}
		}
	}
	return false
}

// check walks every function for contract violations.
func (hc *httpContract) check() []Finding {
	for _, fd := range funcDecls(hc.pkg) {
		if fd.Body == nil {
			continue
		}
		hc.checkErrorBypass(fd.Body)
		hc.checkHeaderOrder(fd.Body)
		hc.checkCancelStatus(fd.Body)
		hc.walkPaths(fd.Body)
	}
	return hc.out
}

// checkErrorBypass flags raw http.Error calls.
func (hc *httpContract) checkErrorBypass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name, ok := pkgLevelCallee(hc.pkg.Info, call); ok &&
			pkgPath == "net/http" && name == "Error" {
			hc.add(call, "http.Error writes text/plain, bypassing the shared JSON error envelope; use the package error writer")
		}
		return true
	})
}

// checkHeaderOrder flags Content-Type set after the status was
// committed, and body writes with no preceding Content-Type. Both are
// position checks within one function body: response writes in this
// package happen in straight-line writer helpers.
func (hc *httpContract) checkHeaderOrder(body *ast.BlockStmt) {
	firstCommit := token.Pos(0)
	var ctSets []*ast.CallExpr
	var writes []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isResponseWriter(hc.pkg.Info.TypeOf(sel.X)) {
			switch sel.Sel.Name {
			case "WriteHeader":
				if firstCommit == 0 || call.Pos() < firstCommit {
					firstCommit = call.Pos()
				}
			case "Write":
				writes = append(writes, call)
				if firstCommit == 0 || call.Pos() < firstCommit {
					firstCommit = call.Pos()
				}
			}
		}
		if isContentTypeSet(hc.pkg, call) {
			ctSets = append(ctSets, call)
		}
		return true
	})
	for _, ct := range ctSets {
		if firstCommit != 0 && ct.Pos() > firstCommit {
			hc.add(ct, "Content-Type set after the response was committed is silently dropped; set it before WriteHeader/Write")
		}
	}
	for _, wr := range writes {
		covered := false
		for _, ct := range ctSets {
			if ct.Pos() < wr.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			hc.add(wr, "body written with no preceding Content-Type header; the sniffer, not the API, will pick the type")
		}
	}
}

// checkCancelStatus flags cancellation branches that write a response
// with a status other than 499.
func (hc *httpContract) checkCancelStatus(body *ast.BlockStmt) {
	check := func(cond ast.Expr, governed []ast.Stmt, at ast.Node) {
		if cond == nil || !mentionsCanceledCheck(hc.pkg, cond) {
			return
		}
		block := &ast.BlockStmt{List: governed}
		if hc.blockKind(block) == hcNone {
			return // branch does not answer the request (async paths)
		}
		if !mentions499(block) {
			hc.add(at, "client cancellation answered with a status other than 499; use StatusClientClosedRequest so the access log can tell \"client gave up\" from a server error")
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			check(n.Cond, n.Body.List, n)
		case *ast.CaseClause:
			for _, e := range n.List {
				check(e, n.Body, n)
			}
		}
		return true
	})
}

// hcState is the path-walk response state for one block.
type hcState struct {
	kind hcKind    // strongest commit on a path reaching this point
	pos  token.Pos // where it committed
}

// walkPaths runs the write-after-write analysis over a function body.
func (hc *httpContract) walkPaths(body *ast.BlockStmt) {
	hc.walkBlock(body.List, hcState{})
	// Nested literals get their own walk (their bodies run later, as
	// separate request-path segments).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			hc.walkBlock(lit.Body.List, hcState{})
		}
		return true
	})
}

// walkBlock advances the state through one statement sequence,
// flagging writes that can follow an earlier write.
func (hc *httpContract) walkBlock(stmts []ast.Stmt, st hcState) hcState {
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return hcState{}
		case *ast.BranchStmt:
			return hcState{}
		case *ast.IfStmt:
			condKind := hcKind(max(int(hc.nodeKind(s.Cond)), int(hc.nodeKind(s.Init))))
			bodyTerm := terminatesBlock(s.Body.List)
			if st.kind == hcMaybe && bodyTerm && hc.blockKind(s.Body) == hcNone && condKind == hcNone {
				// Guard idiom: `x := f(w, ...); if bad { return }` —
				// the committing callee's result gates the return.
				st = hcState{}
			}
			if st.kind == hcAlways && (condKind != hcNone || hc.blockKind(s.Body) != hcNone) {
				hc.add(s, "a response was already committed on this path (line %d); this branch can write a second one",
					hc.pkg.Fset.Position(st.pos).Line)
			}
			hc.walkBlock(s.Body.List, st)
			var elseCont hcKind
			if s.Else != nil {
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					hc.walkBlock(eb.List, st)
					if !terminatesBlock(eb.List) {
						elseCont = hc.blockContinueKind(eb.List)
					}
				} else {
					hc.walkBlock([]ast.Stmt{s.Else}, st)
				}
			}
			switch {
			case condKind != hcNone && bodyTerm:
				// Guard idiom at the source: the commit happened iff the
				// branch returned, so the fallthrough path is clean.
			default:
				cont := condKind
				if !bodyTerm {
					if k := hc.blockContinueKind(s.Body.List); k > cont {
						cont = k
					}
				}
				if elseCont > cont {
					cont = elseCont
				}
				if cont != hcNone && cont > st.kind {
					st = hcState{kind: hcMaybe, pos: s.Pos()}
				}
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if st.kind == hcAlways && hc.nodeKind(s) != hcNone {
				hc.add(s, "a response was already committed on this path (line %d); this statement can write a second one",
					hc.pkg.Fset.Position(st.pos).Line)
			}
			// Clauses are mutually exclusive: each is walked from the
			// entry state, and their exits merge afterwards.
			entry, exit := st, st
			for _, cl := range clauseBodies(s) {
				hc.walkBlock(cl, entry)
				if !terminatesBlock(cl) {
					if k := hc.blockContinueKind(cl); k != hcNone && k > exit.kind {
						exit = hcState{kind: hcMaybe, pos: s.Pos()}
					}
				}
			}
			st = exit
		case *ast.ForStmt, *ast.RangeStmt:
			var list []ast.Stmt
			if f, ok := s.(*ast.ForStmt); ok {
				list = f.Body.List
			} else {
				list = s.(*ast.RangeStmt).Body.List
			}
			hc.walkBlock(list, st)
			if k := hc.blockContinueKind(list); k != hcNone {
				hc.add(s, "a response write inside this loop can run more than once per request; write after the loop or return from it")
			}
		case *ast.BlockStmt:
			st = hc.walkBlock(s.List, st)
		case *ast.DeferStmt, *ast.GoStmt:
			// Literal bodies are walked separately by walkPaths.
		default:
			kind := hc.nodeKind(s)
			if kind == hcNone {
				continue
			}
			if st.kind == hcAlways {
				hc.add(s, "a response was already committed on this path (line %d); this is a second write", hc.pkg.Fset.Position(st.pos).Line)
			} else if st.kind == hcMaybe && kind == hcAlways && !nextStmtGuards(stmts, i) {
				hc.add(s, "an earlier call on this path (line %d) may already have written the response; return after it (or restructure so only one path writes)",
					hc.pkg.Fset.Position(st.pos).Line)
			}
			if kind > st.kind {
				st = hcState{kind: kind, pos: s.Pos()}
			}
		}
	}
	return st
}

// blockContinueKind is the strongest commit on a fallthrough path of
// the sequence: commits that are immediately followed by a return (the
// dominant idiom) do not escape the block.
func (hc *httpContract) blockContinueKind(stmts []ast.Stmt) hcKind {
	st := hc.silentWalk(stmts, hcState{})
	return st.kind
}

// silentWalk is walkBlock's state transfer without findings (used to
// summarize nested blocks; findings inside them come from their own
// walk).
func (hc *httpContract) silentWalk(stmts []ast.Stmt, st hcState) hcState {
	saved := hc.out
	st = hc.walkBlock(stmts, st)
	hc.out = saved
	return st
}

// nextStmtGuards reports whether the statement after index i is an if
// that terminates — the two-statement guard idiom.
func nextStmtGuards(stmts []ast.Stmt, i int) bool {
	if i+1 >= len(stmts) {
		return false
	}
	ifs, ok := stmts[i+1].(*ast.IfStmt)
	return ok && terminatesBlock(ifs.Body.List)
}

// clauseBodies extracts the case/comm bodies of a switch or select.
func clauseBodies(s ast.Stmt) [][]ast.Stmt {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// terminatesBlock reports whether the sequence always leaves the
// enclosing function/loop (return, branch, panic, fatal).
func terminatesBlock(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return terminates(stmts[len(stmts)-1])
}

func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Fatal", "Fatalf", "Exit", "Goexit":
					return true
				}
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			return terminatesBlock(s.Body.List) && terminatesBlock(eb.List)
		}
		return terminatesBlock(s.Body.List) && terminates(s.Else)
	case *ast.BlockStmt:
		return terminatesBlock(s.List)
	}
	return false
}

// calleeObject resolves a call to a package-local function or method
// object.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// isResponseWriter reports the net/http.ResponseWriter interface.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// isContentTypeSet matches w.Header().Set("Content-Type", ...).
func isContentTypeSet(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" || len(call.Args) < 1 {
		return false
	}
	inner, ok := sel.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	innerSel, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok || innerSel.Sel.Name != "Header" || !isResponseWriter(pkg.Info.TypeOf(innerSel.X)) {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	return ok && lit.Value == `"Content-Type"`
}

// mentionsCanceledCheck reports an errors.Is(_, context.Canceled) call
// in the expression.
func mentionsCanceledCheck(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if pkgPath, name, ok := pkgLevelCallee(pkg.Info, call); ok &&
			pkgPath == "errors" && name == "Is" && len(call.Args) == 2 {
			if p2, n2, ok := selPkgName(pkg, call.Args[1]); ok && p2 == "context" && n2 == "Canceled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentions499 reports a reference to StatusClientClosedRequest or the
// literal 499 in the block.
func mentions499(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "StatusClientClosedRequest" {
				found = true
			}
		case *ast.BasicLit:
			if n.Value == "499" {
				found = true
			}
		}
		return !found
	})
	return found
}

// selPkgName resolves expr of the form pkg.Name.
func selPkgName(pkg *Package, e ast.Expr) (string, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
