package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewSimDeterminism returns the simdeterminism pass, restricted to the
// given import-path prefixes (empty scope = every package).
//
// Simulation results must be bit-for-bit reproducible: the paper's
// tables are cycle counts, and the repo's golden/property tests compare
// runs across engines and configurations, so any nondeterminism source
// in a simulation package silently invalidates both. The pass flags:
//
//   - time.Now / time.Since / time.Until: simulated time is the cycle
//     counter, never the wall clock.
//   - package-level math/rand calls (rand.Intn, rand.Int63, ...): they
//     draw from the process-global source; randomness must flow through
//     an explicitly seeded *rand.Rand (see internal/progsynth).
//   - go statements and channel selects: the simulator is
//     single-threaded by contract (probes rely on it), and select makes
//     control flow scheduling-dependent.
//   - range over a map whose body has order-dependent effects (emitting
//     output, appending through a call, plain writes to outer state):
//     map iteration order is randomized per run. Collect and sort the
//     keys first, or keep the body order-insensitive (pure counters,
//     writes into another map, delete).
func NewSimDeterminism(scope ...string) *Pass {
	p := &Pass{
		Name: "simdeterminism",
		Doc:  "forbid nondeterminism sources (wall clock, global rand, goroutines, unordered map iteration) in simulation packages",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		var out []Finding
		add := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{Pass: p.Name, Pos: pkg.Pos(n), Message: fmt.Sprintf(format, args...)})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					add(n, "go statement in simulation code: the simulator is single-threaded by contract")
				case *ast.SelectStmt:
					add(n, "select over channels makes simulation control flow scheduling-dependent")
				case *ast.CallExpr:
					if pkgPath, name, ok := pkgLevelCallee(pkg.Info, n); ok {
						checkCall(add, n, pkgPath, name)
					}
				case *ast.RangeStmt:
					if t := pkg.Info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap && !orderInsensitive(pkg.Info, n.Body) {
							add(n, "iteration over map %s has order-dependent effects; iterate sorted keys instead (or make the body order-insensitive)", exprString(n.X))
						}
					}
				}
				return true
			})
		}
		return out
	}
	return p
}

func checkCall(add func(ast.Node, string, ...any), call *ast.CallExpr, pkgPath, name string) {
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			add(call, "call to time.%s: simulated time must come from the cycle counter, not the wall clock", name)
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors are how a deterministic *rand.Rand is made.
		default:
			add(call, "package-level %s.%s draws from the process-global source; thread a seeded *rand.Rand instead", pkgPath, name)
		}
	}
}

// pkgLevelCallee resolves a call of the form pkgname.Fun(...) to the
// imported package path and function name.
func pkgLevelCallee(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// orderInsensitive reports whether a statement's effects are the same
// under any iteration order of an enclosing map range. Allowed:
// writes into maps, delete, commutative compound assignments and
// counters, declarations of loop-local variables, key collection via
// x = append(x, ...), and control flow composed of the same. Any call
// (other than the allowed builtins) is presumed order-sensitive —
// emitting output or mutating state elsewhere.
func orderInsensitive(info *types.Info, s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		for _, c := range s.List {
			if !orderInsensitive(info, c) {
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		return assignInsensitive(info, s)
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(info, call, "delete")
	case *ast.DeclStmt:
		return !hasImpureCall(info, s)
	case *ast.IfStmt:
		return !hasImpureCallExpr(info, s.Cond) &&
			orderInsensitive(info, s.Init) &&
			orderInsensitive(info, s.Body) &&
			orderInsensitive(info, s.Else)
	case *ast.SwitchStmt:
		if s.Tag != nil && hasImpureCallExpr(info, s.Tag) {
			return false
		}
		return orderInsensitive(info, s.Init) && orderInsensitive(info, s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			if hasImpureCallExpr(info, e) {
				return false
			}
		}
		for _, c := range s.Body {
			if !orderInsensitive(info, c) {
				return false
			}
		}
		return true
	case *ast.ForStmt:
		return !hasImpureCallExpr(info, s.Cond) &&
			orderInsensitive(info, s.Init) &&
			orderInsensitive(info, s.Post) &&
			orderInsensitive(info, s.Body)
	case *ast.RangeStmt:
		return orderInsensitive(info, s.Body)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.EmptyStmt:
		return true
	default:
		// return, defer, go, send, labeled, etc.: conservative.
		return false
	}
}

func assignInsensitive(info *types.Info, s *ast.AssignStmt) bool {
	// Collecting keys with x = append(x, ...) is order-insensitive as a
	// set (the collector sorts before use; the pass cannot see that far,
	// so the sort is on the author).
	if isSelfAppend(info, s) {
		return true
	}
	if hasImpureCall(info, s) {
		return false
	}
	switch s.Tok {
	case token.DEFINE:
		return true // loop-local; order-sensitive uses are caught where used
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if !insensitiveTarget(info, lhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true // commutative accumulation
	default:
		return false
	}
}

// insensitiveTarget: blank, an index into a map, or a self-append
// target (checked separately).
func insensitiveTarget(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "_"
	case *ast.IndexExpr:
		if t := info.TypeOf(e.X); t != nil {
			_, isMap := t.Underlying().(*types.Map)
			return isMap
		}
	}
	return false
}

// isSelfAppend matches `x = append(x, ...)` (single assign).
func isSelfAppend(info *types.Info, s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	return exprString(s.Lhs[0]) == exprString(call.Args[0])
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// hasImpureCall reports whether the node contains a call that could
// have effects: anything but type conversions and the pure builtins.
func hasImpureCall(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.Builtin); ok {
				switch id.Name {
				case "len", "cap", "min", "max", "append", "delete":
					// append/delete are handled by the statement rules;
					// here they only matter as "not output".
					return true
				}
			}
		}
		found = true
		return false
	})
	return found
}

func hasImpureCallExpr(info *types.Info, e ast.Expr) bool {
	return e != nil && hasImpureCall(info, e)
}

func exprString(e ast.Expr) string { return types.ExprString(e) }
