package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestOutputFlagsCanonical pins the shared flag surface: names,
// defaults, and that two registrations are indistinguishable.
func TestOutputFlagsCanonical(t *testing.T) {
	collect := func(fs *flag.FlagSet) map[string][2]string {
		out := map[string][2]string{}
		fs.VisitAll(func(f *flag.Flag) {
			out[f.Name] = [2]string{f.DefValue, f.Usage}
		})
		return out
	}
	a := flag.NewFlagSet("a", flag.ContinueOnError)
	b := flag.NewFlagSet("b", flag.ContinueOnError)
	RegisterOutputFlags(a)
	RegisterOutputFlags(b)
	fa, fb := collect(a), collect(b)

	wantNames := []string{"json", "out", "sarif", "timings", "timings-out"}
	if len(fa) != len(wantNames) {
		t.Errorf("shared flag set has %d flags, want %d: %v", len(fa), len(wantNames), fa)
	}
	for _, name := range wantNames {
		if _, ok := fa[name]; !ok {
			t.Errorf("shared flag set is missing -%s", name)
		}
		if fa[name] != fb[name] {
			t.Errorf("-%s differs between registrations: %v vs %v", name, fa[name], fb[name])
		}
	}
}

// TestAnalysisCommandsUseSharedFlags is the drift gate at the source
// level: both analysis CLIs must register the machine-output flags
// through RegisterOutputFlags and must not (re)define any of the shared
// names locally.
func TestAnalysisCommandsUseSharedFlags(t *testing.T) {
	local := regexp.MustCompile(`flag\.(Bool|String)\("(json|out|sarif|timings|timings-out)"`)
	for _, cmd := range []string{"ruulint", "ruudfa"} {
		dir := filepath.Join(repoRoot(t), "cmd", cmd)
		names, err := goFileNames(dir)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		src := ""
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			src += string(data)
		}
		if !strings.Contains(src, "RegisterOutputFlags(") {
			t.Errorf("cmd/%s does not use analysis.RegisterOutputFlags", cmd)
		}
		if m := local.FindString(src); m != "" {
			t.Errorf("cmd/%s defines a shared output flag locally (%s); register it in internal/analysis/cliflags.go instead", cmd, m)
		}
	}
}
