// Package ssa is the value-flow layer of the repository's static
// analyzer: a zero-dependency (go/ast + go/types only) SSA-form IR
// built per function from the already type-checked tree the analysis
// loader produces.
//
// The passes above it reason about *values*, not syntax: where an
// allocated object flows (escape analysis behind hotpathalloc's
// finding messages), whether a pointer is provably nil at a deref
// (the nilness pass), and whether an architectural-state value reaches
// a mutation site off the audited commit path (policycontract). The
// RTA call graph (internal/analysis/callgraph.go) answered "who calls
// whom"; this package answers "where does this value go".
//
// The IR is variable-level SSA in the classic construction: a per-
// function control-flow graph of basic blocks, a dominator tree
// (Cooper-Harvey-Kennedy), phi placement on iterated dominance
// frontiers, and a renaming walk that leaves behind def-use chains —
// every use of a tracked local resolves to exactly one reaching
// definition (possibly a phi). Variables whose address is taken, that
// are captured by a closure, or that are bound by a type switch are
// deliberately untracked: a use of such a variable resolves to no
// definition, and clients must treat it as unknown. That keeps the
// builder simple and the analyses sound — imprecision always degrades
// to "don't know", never to a wrong fact. See docs/ANALYSIS.md (v4).
package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Func is the SSA-form view of one declared function or method.
type Func struct {
	// Decl is the source declaration the IR was built from.
	Decl *ast.FuncDecl
	// Fset positions the declaration's file.
	Fset *token.FileSet
	// Info is the enclosing package's type information.
	Info *types.Info
	// Blocks are the reachable basic blocks in reverse-postorder;
	// Blocks[0] is the entry.
	Blocks []*Block
	// Vars are the tracked local variables (params, results named in
	// the signature, := and var-declared locals) in first-seen order.
	Vars []*types.Var
	// UseDef resolves each identifier use of a tracked variable to its
	// unique reaching definition. A use absent from the map reads an
	// untracked variable (address-taken, closure-captured, or in
	// unreachable code) and must be treated as unknown.
	UseDef map[*ast.Ident]*Def
	// Defs lists every definition of each tracked variable: signature
	// definitions (params, receiver, named results) first, then phis
	// and assignments in dominator-tree visit order. Def.Num follows
	// this order, 1-based.
	Defs map[*types.Var][]*Def
	// Approx marks a function the builder could not fully analyze
	// (goto); its chains exist but may be incomplete, and clients that
	// need soundness should skip it.
	Approx bool

	parent map[ast.Node]ast.Node

	blockOfOnce sync.Once
	blockOf     map[ast.Node]*Block
}

// Block is one basic block: straight-line statements (and the
// condition expression of a trailing two-way branch) with no internal
// control flow.
type Block struct {
	// Index is the block's position in Func.Blocks (reverse postorder).
	Index int
	// Nodes are the block's statements and condition expressions in
	// execution order. Compound statements never appear; the CFG
	// builder decomposes them.
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean expression controlling the
	// block's two-way branch: Succs[0] is the true edge, Succs[1] the
	// false edge.
	Cond ast.Expr
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Idom is the immediate dominator (nil for the entry block).
	Idom *Block
	// Phis are the block's phi definitions, one per variable merged
	// here.
	Phis []*Def

	children []*Block // dominator-tree children
	frontier []*Block // dominance frontier
	postnum  int
}

// DefKind classifies how a definition produces its value.
type DefKind uint8

const (
	// DefParam: a function parameter or method receiver (value unknown
	// but non-phi).
	DefParam DefKind = iota
	// DefZero: a declaration without an initializer (var x T): the
	// variable holds T's zero value.
	DefZero
	// DefAssign: an assignment or initialized declaration; Rhs is the
	// defining expression when the assignment pairs one lhs with one
	// rhs, nil for tuple assignments (x, y := f()).
	DefAssign
	// DefRange: a range clause binding (for k, v := range ...): a
	// fresh, unknown value per iteration.
	DefRange
	// DefPhi: a merge point; Args holds one incoming definition per
	// predecessor edge, in Preds order.
	DefPhi
)

func (k DefKind) String() string {
	switch k {
	case DefParam:
		return "param"
	case DefZero:
		return "zero"
	case DefAssign:
		return "assign"
	case DefRange:
		return "range"
	case DefPhi:
		return "phi"
	}
	return "unknown"
}

// Def is one SSA definition of a tracked variable.
type Def struct {
	// Var is the variable defined.
	Var *types.Var
	// Block is the defining block (nil only while building).
	Block *Block
	// Kind classifies the definition.
	Kind DefKind
	// Rhs is the defining expression for single-assignment DefAssign
	// definitions; nil otherwise.
	Rhs ast.Expr
	// Node is the defining site: the assignment statement, value spec,
	// range statement, or the receiver/parameter field. Nil for phis.
	Node ast.Node
	// Args are the phi operands, indexed like Block.Preds. Entries may
	// be nil when a predecessor path carries no definition (use before
	// def on that path — a vet-level bug; treat as unknown).
	Args []*Def
	// Num is the definition's 1-based version number within its
	// variable.
	Num int
}

// Pos returns the definition's source position (the variable's
// position for params and phis).
func (d *Def) Pos() token.Pos {
	if d.Node != nil {
		return d.Node.Pos()
	}
	return d.Var.Pos()
}

// Parent returns the immediate syntactic parent of a node within the
// function body, or nil at the body root. The parent map covers every
// node under Decl, including closure bodies.
func (f *Func) Parent(n ast.Node) ast.Node { return f.parent[n] }

// ObjOf resolves an identifier to the variable it uses or defines.
func (f *Func) ObjOf(id *ast.Ident) *types.Var {
	if v, ok := f.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := f.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// UsesOf returns every identifier whose reaching definition is d, in
// source order. The map is built lazily on first call.
func (f *Func) UsesOf(d *Def) []*ast.Ident {
	var out []*ast.Ident
	for id, dd := range f.UseDef {
		if dd == d {
			out = append(out, id)
		}
	}
	sortIdents(out)
	return out
}

// PhisOver returns every phi definition that carries d as an operand,
// directly merging it into a later version.
func (f *Func) PhisOver(d *Def) []*Def {
	var out []*Def
	for _, defs := range f.Defs {
		for _, cand := range defs {
			if cand.Kind != DefPhi {
				continue
			}
			for _, a := range cand.Args {
				if a == d {
					out = append(out, cand)
					break
				}
			}
		}
	}
	return out
}

// CondNilCheck inspects a block's controlling condition for the form
// `x == nil` or `x != nil` with x a tracked identifier. It returns the
// reaching definition of x and whether the TRUE edge is the nil side.
func (f *Func) CondNilCheck(b *Block) (d *Def, nilOnTrue bool, ok bool) {
	be, isBin := unparen(b.Cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	id, other := identOperand(be)
	if id == nil || !isNilExpr(f.Info, other) {
		return nil, false, false
	}
	d, found := f.UseDef[id]
	if !found {
		return nil, false, false
	}
	return d, be.Op == token.EQL, true
}

// BlockOf returns the basic block containing node n (or the block
// whose decomposed header carries it), nil when n sits in unreachable
// code or outside the reachable CFG. The node→block index is built on
// first call.
func (f *Func) BlockOf(n ast.Node) *Block {
	f.blockOfOnce.Do(func() {
		f.blockOf = map[ast.Node]*Block{}
		for _, b := range f.Blocks {
			for _, node := range b.Nodes {
				f.blockOf[node] = b
			}
		}
	})
	for cur := n; cur != nil; cur = f.parent[cur] {
		if b, ok := f.blockOf[cur]; ok {
			return b
		}
	}
	return nil
}

// Dominates reports whether block a dominates block b.
func Dominates(a, b *Block) bool {
	for ; b != nil; b = b.Idom {
		if a == b {
			return true
		}
	}
	return false
}

func identOperand(be *ast.BinaryExpr) (id *ast.Ident, other ast.Expr) {
	if x, ok := unparen(be.X).(*ast.Ident); ok {
		return x, be.Y
	}
	if y, ok := unparen(be.Y).(*ast.Ident); ok {
		return y, be.X
	}
	return nil, nil
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func sortIdents(ids []*ast.Ident) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Pos() < ids[j-1].Pos(); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
