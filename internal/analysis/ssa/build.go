package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Build constructs the SSA view of one function declaration. It
// returns nil for declarations without a body. The declaration must
// belong to a package whose *types.Info has Defs, Uses, and Types
// populated (the analysis loader always does).
func Build(decl *ast.FuncDecl, fset *token.FileSet, info *types.Info) *Func {
	if decl.Body == nil {
		return nil
	}
	fn := &Func{
		Decl:   decl,
		Fset:   fset,
		Info:   info,
		UseDef: map[*ast.Ident]*Def{},
		Defs:   map[*types.Var][]*Def{},
		parent: map[ast.Node]ast.Node{},
	}
	buildParents(fn, decl)
	tracked := collectTracked(fn, decl)

	entry := buildCFG(fn)
	pruneAndOrder(fn, entry)
	buildDominators(fn)

	b := &builder{fn: fn, tracked: tracked}
	b.placePhis()
	b.rename()
	return fn
}

// buildParents records the immediate syntactic parent of every node
// under decl.
func buildParents(fn *Func, decl *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			fn.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// collectTracked gathers the variables the builder promotes to SSA:
// the receiver, parameters, named results, and body-declared locals —
// minus anything address-taken, referenced inside a function literal
// (captured, or local to a closure whose CFG we do not build), or
// bound by a type switch guard. Returns the tracked set and fills
// fn.Vars in first-seen order.
func collectTracked(fn *Func, decl *ast.FuncDecl) map[*types.Var]bool {
	var seen []*types.Var
	candidate := map[*types.Var]bool{}
	drop := map[*types.Var]bool{}

	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := fn.Info.Defs[id].(*types.Var); ok && !candidate[v] {
			candidate[v] = true
			seen = append(seen, v)
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				add(name)
			}
		}
	}
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			add(name)
		}
	}
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			for _, name := range f.Names {
				add(name)
			}
		}
	}

	funcLitDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			funcLitDepth++
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := fn.ObjOf(id); v != nil {
						drop[v] = true
					}
				}
				return true
			})
			funcLitDepth--
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v := fn.ObjOf(id); v != nil {
						drop[v] = true
					}
				}
			}
		case *ast.TypeSwitchStmt:
			// The guard variable is a distinct object per clause
			// (Implicits); none of them fit single-assignment form.
			if as, ok := n.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if v, ok := fn.Info.Defs[id].(*types.Var); ok {
						drop[v] = true
					}
				}
			}
			for _, cs := range n.Body.List {
				if v, ok := fn.Info.Implicits[cs].(*types.Var); ok {
					drop[v] = true
				}
			}
		case *ast.Ident:
			if funcLitDepth == 0 {
				add(n)
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)

	out := map[*types.Var]bool{}
	for _, v := range seen {
		if drop[v] {
			continue
		}
		out[v] = true
		fn.Vars = append(fn.Vars, v)
	}
	return out
}

// builder runs phi placement and the renaming walk.
type builder struct {
	fn      *Func
	tracked map[*types.Var]bool
	stacks  map[*types.Var][]*Def
}

func (b *builder) trackedObj(id *ast.Ident) *types.Var {
	v := b.fn.ObjOf(id)
	if v != nil && b.tracked[v] {
		return v
	}
	return nil
}

// forEachDef invokes f for every tracked-variable definition a block
// node performs. It mirrors exactly what the renamer treats as a
// definition.
func (b *builder) forEachDef(n ast.Node, f func(v *types.Var)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				if v := b.trackedObj(id); v != nil {
					f(v)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if v := b.trackedObj(name); v != nil {
					f(v)
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if v := b.trackedObj(id); v != nil {
				f(v)
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if v := b.trackedObj(id); v != nil {
					f(v)
				}
			}
		}
	}
}

// placePhis inserts phi definitions on the iterated dominance frontier
// of every variable with definitions in more than one block (the
// classic minimal-SSA placement).
func (b *builder) placePhis() {
	if len(b.fn.Blocks) == 0 {
		return
	}
	entry := b.fn.Blocks[0]
	defBlocks := map[*types.Var]map[*Block]bool{}
	record := func(v *types.Var, blk *Block) {
		m := defBlocks[v]
		if m == nil {
			m = map[*Block]bool{}
			defBlocks[v] = m
		}
		m[blk] = true
	}
	// Parameters, the receiver, and named results are defined in the
	// entry block.
	for _, v := range b.fn.Vars {
		if isSignatureVar(b.fn, v) {
			record(v, entry)
		}
	}
	for _, blk := range b.fn.Blocks {
		for _, n := range blk.Nodes {
			b.forEachDef(n, func(v *types.Var) { record(v, blk) })
		}
	}

	for _, v := range b.fn.Vars {
		blocks := defBlocks[v]
		hasPhi := map[*Block]bool{}
		var work []*Block
		for blk := range blocks {
			work = append(work, blk)
		}
		// Deterministic order is not needed for correctness here (the
		// resulting phi set is a fixed point), but keep the worklist
		// stable anyway so Def.Num assignment is reproducible.
		sortBlocks(work)
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range blk.frontier {
				if hasPhi[fr] {
					continue
				}
				hasPhi[fr] = true
				phi := &Def{
					Var:   v,
					Block: fr,
					Kind:  DefPhi,
					Args:  make([]*Def, len(fr.Preds)),
				}
				fr.Phis = append(fr.Phis, phi)
				if !blocks[fr] {
					blocks[fr] = true
					work = append(work, fr)
				}
			}
		}
	}
}

func isSignatureVar(fn *Func, v *types.Var) bool {
	pos := v.Pos()
	body := fn.Decl.Body
	return pos < body.Lbrace || pos > body.Rbrace
}

func sortBlocks(s []*Block) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Index < s[j-1].Index; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// rename walks the dominator tree assigning versions: every use meets
// the definition on top of its variable's stack, every definition
// pushes a new version.
func (b *builder) rename() {
	if len(b.fn.Blocks) == 0 {
		return
	}
	b.stacks = map[*types.Var][]*Def{}
	entry := b.fn.Blocks[0]

	// Seed the entry with signature definitions.
	var sigDefs []*types.Var
	push := func(d *Def) {
		d.Num = len(b.fn.Defs[d.Var]) + 1
		b.fn.Defs[d.Var] = append(b.fn.Defs[d.Var], d)
		b.stacks[d.Var] = append(b.stacks[d.Var], d)
	}
	sigDef := func(field *ast.Field, name *ast.Ident, kind DefKind) {
		v := b.trackedObj(name)
		if v == nil {
			return
		}
		push(&Def{Var: v, Block: entry, Kind: kind, Node: field})
		sigDefs = append(sigDefs, v)
	}
	if b.fn.Decl.Recv != nil {
		for _, f := range b.fn.Decl.Recv.List {
			for _, name := range f.Names {
				sigDef(f, name, DefParam)
			}
		}
	}
	for _, f := range b.fn.Decl.Type.Params.List {
		for _, name := range f.Names {
			sigDef(f, name, DefParam)
		}
	}
	if b.fn.Decl.Type.Results != nil {
		for _, f := range b.fn.Decl.Type.Results.List {
			for _, name := range f.Names {
				sigDef(f, name, DefZero)
			}
		}
	}

	b.renameBlock(entry)

	for _, v := range sigDefs {
		b.pop(v)
	}
}

func (b *builder) top(v *types.Var) *Def {
	s := b.stacks[v]
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

func (b *builder) pop(v *types.Var) {
	s := b.stacks[v]
	b.stacks[v] = s[:len(s)-1]
}

func (b *builder) renameBlock(blk *Block) {
	var pushed []*types.Var
	push := func(d *Def) {
		d.Num = len(b.fn.Defs[d.Var]) + 1
		b.fn.Defs[d.Var] = append(b.fn.Defs[d.Var], d)
		b.stacks[d.Var] = append(b.stacks[d.Var], d)
		pushed = append(pushed, d.Var)
	}

	for _, phi := range blk.Phis {
		push(phi)
	}
	for _, n := range blk.Nodes {
		b.renameNode(blk, n, push)
	}

	// Fill phi operands in the successors: this block's current
	// version is the value arriving along the edge.
	for _, s := range blk.Succs {
		for j, p := range s.Preds {
			if p != blk {
				continue
			}
			for _, phi := range s.Phis {
				phi.Args[j] = b.top(phi.Var)
			}
		}
	}

	for _, c := range blk.children {
		b.renameBlock(c)
	}
	for _, v := range pushed {
		b.pop(v)
	}
}

// renameNode processes one block node: uses resolve against the
// current stacks, then definitions push new versions. Evaluation order
// matches Go: all right-hand sides before any assignment takes effect.
func (b *builder) renameNode(blk *Block, n ast.Node, push func(*Def)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		plain := n.Tok == token.ASSIGN || n.Tok == token.DEFINE
		for _, e := range n.Rhs {
			b.uses(e)
		}
		for _, l := range n.Lhs {
			if plain {
				b.lhsUses(l)
			} else {
				// Compound assignment (x += e) reads the target too.
				b.uses(l)
			}
		}
		for i, l := range n.Lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			v := b.trackedObj(id)
			if v == nil {
				continue
			}
			var rhs ast.Expr
			// Rhs is meaningful only for a plain 1:1 assignment; a
			// compound op's value is lhs⊕rhs, not rhs.
			if plain && len(n.Lhs) == len(n.Rhs) {
				rhs = n.Rhs[i]
			}
			push(&Def{Var: v, Block: blk, Kind: DefAssign, Rhs: rhs, Node: n})
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			b.uses(n)
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, e := range vs.Values {
				b.uses(e)
			}
			for i, name := range vs.Names {
				v := b.trackedObj(name)
				if v == nil {
					continue
				}
				kind := DefZero
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					kind = DefAssign
					rhs = vs.Values[i]
				} else if len(vs.Values) > 0 {
					kind = DefAssign // tuple init: rhs unknown per-name
				}
				push(&Def{Var: v, Block: blk, Kind: kind, Rhs: rhs, Node: vs})
			}
		}
	case *ast.IncDecStmt:
		b.uses(n.X)
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if v := b.trackedObj(id); v != nil {
				push(&Def{Var: v, Block: blk, Kind: DefAssign, Node: n})
			}
		}
	case *ast.RangeStmt:
		// Decomposed: only the range operand and the per-iteration
		// bindings live in the header; the body has its own blocks.
		b.uses(n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			b.lhsUses(e)
		}
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if v := b.trackedObj(id); v != nil {
					push(&Def{Var: v, Block: blk, Kind: DefRange, Node: n})
				}
			}
		}
	default:
		b.uses(n)
	}
}

// uses records a reaching definition for every tracked-variable
// identifier under n, skipping function literals (their variables are
// untracked by construction).
func (b *builder) uses(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v := b.trackedObj(id)
		if v == nil {
			return true
		}
		// Only record genuine uses: defining occurrences are handled
		// by the def walk.
		if _, isDef := b.fn.Info.Defs[id]; isDef {
			return true
		}
		if d := b.top(v); d != nil {
			b.fn.UseDef[id] = d
		}
		return true
	})
}

// lhsUses records the uses embedded in an assignment target: the index
// and base of a[i], the receiver of x.f, the pointer of *p. A bare
// identifier target is a pure definition and records nothing.
func (b *builder) lhsUses(l ast.Expr) {
	if _, ok := unparen(l).(*ast.Ident); ok {
		return
	}
	b.uses(l)
}
