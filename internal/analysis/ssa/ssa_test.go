package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks src (one file of package p) and returns the
// named function's SSA form plus its package context.
func parseFunc(t *testing.T, src, name string) (*Func, *token.FileSet, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Implicits: map[ast.Node]types.Object{},
		Instances: map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		f := Build(fd, fset, info)
		if f == nil {
			t.Fatalf("Build(%s) = nil", name)
		}
		return f, fset, info
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

func varNamed(t *testing.T, f *Func, name string) *types.Var {
	t.Helper()
	for _, v := range f.Vars {
		if v.Name() == name {
			return v
		}
	}
	t.Fatalf("variable %s not tracked; tracked: %v", name, f.Vars)
	return nil
}

func TestStraightLineDefUse(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(a int) int {
	x := a + 1
	y := x * 2
	return y
}`, "f")
	if f.Approx {
		t.Fatal("straight-line function marked approximate")
	}
	x := varNamed(t, f, "x")
	if got := len(f.Defs[x]); got != 1 {
		t.Fatalf("defs of x = %d, want 1", got)
	}
	d := f.Defs[x][0]
	if d.Kind != DefAssign || d.Rhs == nil {
		t.Fatalf("x def: kind=%v rhs=%v", d.Kind, d.Rhs)
	}
	uses := f.UsesOf(d)
	if len(uses) != 1 || uses[0].Name != "x" {
		t.Fatalf("uses of x's def = %v, want the one use in y := x*2", uses)
	}
	a := varNamed(t, f, "a")
	if f.Defs[a][0].Kind != DefParam {
		t.Fatalf("a def kind = %v, want param", f.Defs[a][0].Kind)
	}
}

func TestIfPhiPlacement(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	x := varNamed(t, f, "x")
	defs := f.Defs[x]
	var phi *Def
	for _, d := range defs {
		if d.Kind == DefPhi {
			phi = d
		}
	}
	if phi == nil {
		t.Fatalf("no phi for x; defs: %d", len(defs))
	}
	if len(phi.Args) != 2 {
		t.Fatalf("phi arity = %d, want 2", len(phi.Args))
	}
	for i, a := range phi.Args {
		if a == nil {
			t.Fatalf("phi arg %d is nil", i)
		}
		if a.Kind != DefAssign {
			t.Fatalf("phi arg %d kind = %v, want assign", i, a.Kind)
		}
	}
	if phi.Args[0] == phi.Args[1] {
		t.Fatal("phi merges the same def on both edges")
	}
	// The return's use of x must resolve to the phi.
	found := false
	for id, d := range f.UseDef {
		if id.Name == "x" && d == phi {
			found = true
		}
	}
	if !found {
		t.Fatal("return use of x does not resolve to the phi")
	}
}

func TestLoopPhi(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	s := varNamed(t, f, "s")
	i := varNamed(t, f, "i")
	phis := 0
	for _, d := range f.Defs[s] {
		if d.Kind == DefPhi {
			phis++
		}
	}
	if phis == 0 {
		t.Fatal("loop-carried s has no phi")
	}
	// i++ both uses and redefines i.
	sawIncDef := false
	for _, d := range f.Defs[i] {
		if _, ok := d.Node.(*ast.IncDecStmt); ok {
			sawIncDef = true
		}
	}
	if !sawIncDef {
		t.Fatal("i++ did not create a definition")
	}
}

func TestRangeAndSwitch(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(xs []int, mode int) int {
	total := 0
	for _, v := range xs {
		switch mode {
		case 0:
			total += v
		case 1:
			total -= v
		default:
			total = 0
		}
	}
	return total
}`, "f")
	if f.Approx {
		t.Fatal("range+switch marked approximate")
	}
	v := varNamed(t, f, "v")
	var rangeDef *Def
	for _, d := range f.Defs[v] {
		if d.Kind == DefRange {
			rangeDef = d
		}
	}
	if rangeDef == nil {
		t.Fatal("range binding produced no DefRange")
	}
	if got := len(f.UsesOf(rangeDef)); got != 2 {
		t.Fatalf("uses of range v = %d, want 2", got)
	}
}

func TestUntrackedVariables(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f() (int, int) {
	addr := 1
	p := &addr
	captured := 2
	g := func() { captured++ }
	g()
	return *p, captured
}`, "f")
	for _, v := range f.Vars {
		if v.Name() == "addr" {
			t.Fatal("address-taken variable tracked")
		}
		if v.Name() == "captured" {
			t.Fatal("closure-captured variable tracked")
		}
	}
	// Uses of untracked vars must have no UseDef entry.
	for id := range f.UseDef {
		if id.Name == "addr" || id.Name == "captured" {
			t.Fatalf("untracked %s has a reaching definition", id.Name)
		}
	}
}

func TestGotoApprox(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(n int) int {
	x := 0
loop:
	x++
	if x < n {
		goto loop
	}
	return x
}`, "f")
	if !f.Approx {
		t.Fatal("goto did not mark function approximate")
	}
}

func TestCondNilCheck(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
type T struct{ v int }
func f(p *T) int {
	if p == nil {
		return 0
	}
	return p.v
}`, "f")
	var checked *Block
	for _, b := range f.Blocks {
		if b.Cond != nil {
			checked = b
		}
	}
	if checked == nil {
		t.Fatal("no conditional block")
	}
	d, nilOnTrue, ok := f.CondNilCheck(checked)
	if !ok {
		t.Fatal("nil check not recognized")
	}
	if !nilOnTrue {
		t.Fatal("p == nil: true edge should be the nil side")
	}
	if d.Kind != DefParam || d.Var.Name() != "p" {
		t.Fatalf("nil check resolves to %v of %s", d.Kind, d.Var.Name())
	}
	// True edge leads to return 0; false edge to return p.v.
	if len(checked.Succs) != 2 {
		t.Fatalf("cond block has %d succs", len(checked.Succs))
	}
}

func TestDominates(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	entry := f.Blocks[0]
	for _, b := range f.Blocks {
		if !Dominates(entry, b) {
			t.Fatalf("entry does not dominate block %d", b.Index)
		}
	}
	// The two arms do not dominate each other or the join.
	var arms []*Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 1 && b.Preds[0] == entry {
			arms = append(arms, b)
		}
	}
	if len(arms) == 2 && Dominates(arms[0], arms[1]) {
		t.Fatal("sibling arms dominate each other")
	}
}

func TestLabeledBreak(t *testing.T) {
	f, _, _ := parseFunc(t, `package p
func f(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}`, "f")
	if f.Approx {
		t.Fatal("labeled break marked function approximate")
	}
	total := varNamed(t, f, "total")
	phis := 0
	for _, d := range f.Defs[total] {
		if d.Kind == DefPhi {
			phis++
		}
	}
	if phis == 0 {
		t.Fatal("total crosses loop joins with no phi")
	}
}

// escapeProgram builds a Program over the test file so interprocedural
// summaries resolve static calls.
func escapeProgram(t *testing.T, src string) (*Program, map[string]*ast.FuncDecl, *token.FileSet, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Implicits: map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	decls := map[string]*ast.FuncDecl{}
	byObj := map[*types.Func]*ast.FuncDecl{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			decls[fd.Name.Name] = fd
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				byObj[obj] = fd
			}
		}
	}
	prog := NewProgram(
		func(fn *types.Func) (Source, bool) {
			if fd, ok := byObj[fn]; ok {
				return Source{Decl: fd, Fset: fset, Info: info}, true
			}
			return Source{}, false
		},
		func(inf *types.Info, call *ast.CallExpr) []*types.Func {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if fn, ok := inf.Uses[id].(*types.Func); ok {
					return []*types.Func{fn}
				}
			}
			return nil
		},
	)
	return prog, decls, fset, info
}

// allocExprIn finds the first composite-literal or make/new call in
// the named function.
func allocExprIn(t *testing.T, decl *ast.FuncDecl) ast.Expr {
	t.Helper()
	var found ast.Expr
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			found = n
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
				found = n
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatal("no allocation expression found")
	}
	return found
}

func TestEscapeReturned(t *testing.T) {
	src := `package p
type T struct{ v int }
func f() *T {
	t := &T{v: 1}
	return t
}`
	prog, decls, fset, info := escapeProgram(t, src)
	f := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	esc := prog.Escapes(f, allocExprIn(t, decls["f"]))
	if !esc.Escapes {
		t.Fatal("returned allocation reported as non-escaping")
	}
	joined := strings.Join(esc.Path, " -> ")
	if !strings.Contains(joined, "assigned to t") || !strings.Contains(joined, "returned") {
		t.Fatalf("path %q missing assignment/return steps", joined)
	}
}

func TestEscapeLocalOnly(t *testing.T) {
	src := `package p
type T struct{ v int }
func f() int {
	t := T{v: 1}
	return t.v
}`
	prog, decls, fset, info := escapeProgram(t, src)
	f := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	esc := prog.Escapes(f, allocExprIn(t, decls["f"]))
	if esc.Escapes {
		t.Fatalf("frame-local value reported escaping: %v", esc.Path)
	}
}

func TestEscapeStoredToField(t *testing.T) {
	src := `package p
type T struct{ v int }
type Box struct{ p *T }
func f(b *Box) {
	b.p = &T{v: 1}
}`
	prog, decls, fset, info := escapeProgram(t, src)
	f := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	esc := prog.Escapes(f, allocExprIn(t, decls["f"]))
	if !esc.Escapes {
		t.Fatal("field store reported as non-escaping")
	}
	if !strings.Contains(strings.Join(esc.Path, " "), "stored to b.p") {
		t.Fatalf("path %v missing field-store step", esc.Path)
	}
}

func TestEscapeThroughCall(t *testing.T) {
	src := `package p
type T struct{ v int }
var sink *T
func keep(t *T) { sink = t }
func drop(t *T) int { return t.v }
func f() {
	a := &T{}
	keep(a)
}
func g() {
	b := &T{}
	_ = drop(b)
}`
	prog, decls, fset, info := escapeProgram(t, src)

	ff := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	escF := prog.Escapes(ff, allocExprIn(t, decls["f"]))
	if !escF.Escapes {
		t.Fatal("value stored to a global through keep() reported as non-escaping")
	}
	if !strings.Contains(strings.Join(escF.Path, " "), "keep") {
		t.Fatalf("path %v does not mention keep", escF.Path)
	}

	fg := prog.FuncOf(Source{Decl: decls["g"], Fset: fset, Info: info})
	escG := prog.Escapes(fg, allocExprIn(t, decls["g"]))
	if escG.Escapes {
		t.Fatalf("value passed to read-only drop() reported escaping: %v", escG.Path)
	}
}

func TestEscapeSendOnChannel(t *testing.T) {
	src := `package p
type T struct{ v int }
func f(ch chan *T) {
	ch <- &T{}
}`
	prog, decls, fset, info := escapeProgram(t, src)
	f := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	esc := prog.Escapes(f, allocExprIn(t, decls["f"]))
	if !esc.Escapes || !strings.Contains(strings.Join(esc.Path, " "), "sent on channel") {
		t.Fatalf("channel send: escapes=%v path=%v", esc.Escapes, esc.Path)
	}
}

func TestEscapePhiMerge(t *testing.T) {
	src := `package p
type T struct{ v int }
func f(c bool) *T {
	t := &T{v: 1}
	if c {
		t = &T{v: 2}
	}
	return t
}`
	prog, decls, fset, info := escapeProgram(t, src)
	f := prog.FuncOf(Source{Decl: decls["f"], Fset: fset, Info: info})
	// The first allocation only reaches the return through the phi.
	esc := prog.Escapes(f, allocExprIn(t, decls["f"]))
	if !esc.Escapes {
		t.Fatalf("phi-merged allocation reported as non-escaping")
	}
}
