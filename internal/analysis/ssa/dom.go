package ssa

// Dominator tree and dominance frontiers, per Cooper, Harvey & Kennedy,
// "A Simple, Fast Dominance Algorithm". Blocks must already be in
// reverse postorder (pruneAndOrder), so intersect() can walk postorder
// numbers upward.

// buildDominators fills Idom, children, and frontier for every block.
func buildDominators(fn *Func) {
	if len(fn.Blocks) == 0 {
		return
	}
	entry := fn.Blocks[0]
	entry.Idom = nil
	// idom[entry] is conventionally entry itself during iteration.
	idom := map[*Block]*Block{entry: entry}
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(idom, p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range fn.Blocks[1:] {
		b.Idom = idom[b]
		if b.Idom != nil {
			b.Idom.children = append(b.Idom.children, b)
		}
	}

	// Dominance frontiers (the standard two-finger climb): for each
	// join point, walk each predecessor up to the idom, adding the
	// join to every frontier on the way.
	for _, b := range fn.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			for runner := p; runner != nil && runner != b.Idom; runner = runner.Idom {
				if !containsBlock(runner.frontier, b) {
					runner.frontier = append(runner.frontier, b)
				}
			}
		}
	}
}

func intersect(idom map[*Block]*Block, a, b *Block) *Block {
	for a != b {
		for a.postnum < b.postnum {
			a = idom[a]
		}
		for b.postnum < a.postnum {
			b = idom[b]
		}
	}
	return a
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
