package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sync"
)

// Program is the interprocedural view: a cache of per-function SSA
// plus memoized parameter-escape summaries. It is deliberately
// decoupled from the analysis package's Snapshot — the two injection
// points below are closures so this package never imports the call
// graph (the dependency runs analysis → ssa, not back).
type Program struct {
	// DeclOf locates a module function's declaration, reporting false
	// for functions outside the module (their bodies are unknown).
	DeclOf func(fn *types.Func) (Source, bool)
	// Callees resolves a call expression to its possible targets —
	// the static callee, or every module implementer for an interface
	// method call. An empty slice means the call is unresolvable.
	Callees func(info *types.Info, call *ast.CallExpr) []*types.Func

	mu        sync.Mutex
	funcs     map[*ast.FuncDecl]*Func
	summaries map[sumKey]bool
}

// Source bundles a declaration with its package context.
type Source struct {
	Decl *ast.FuncDecl
	Fset *token.FileSet
	Info *types.Info
}

// NewProgram returns a Program with the two resolvers injected.
func NewProgram(declOf func(*types.Func) (Source, bool), callees func(*types.Info, *ast.CallExpr) []*types.Func) *Program {
	return &Program{
		DeclOf:    declOf,
		Callees:   callees,
		funcs:     map[*ast.FuncDecl]*Func{},
		summaries: map[sumKey]bool{},
	}
}

// FuncOf returns the (cached) SSA form of src. Safe for concurrent
// use.
func (p *Program) FuncOf(src Source) *Func {
	p.mu.Lock()
	f, ok := p.funcs[src.Decl]
	if ok {
		p.mu.Unlock()
		return f
	}
	p.mu.Unlock()
	f = Build(src.Decl, src.Fset, src.Info)
	p.mu.Lock()
	if prev, ok := p.funcs[src.Decl]; ok {
		f = prev // another goroutine won the race; keep one canonical Func
	} else {
		p.funcs[src.Decl] = f
	}
	p.mu.Unlock()
	return f
}

type sumKey struct {
	fn  *types.Func
	idx int
}

// Escape is one escape verdict: whether the value outlives its frame,
// and the value-flow steps that show why.
type Escape struct {
	// Escapes reports whether the value escapes the function.
	Escapes bool
	// Path is the step-by-step route (innermost first) when Escapes
	// is true, each step a short human-readable clause with a
	// position, e.g. "assigned to buf (x.go:12)" → "returned
	// (x.go:20)".
	Path []string
}

// maxEscapeSteps bounds the reported path (and the walk itself) so a
// pathological chain cannot run away; a cut-off walk reports escape
// conservatively.
const maxEscapeSteps = 24

// Escapes analyzes where the value of expression e — typically an
// allocation site — flows within f, following SSA def-use chains and
// parameter summaries across calls. It errs toward Escapes=true: an
// unresolvable call or an untracked variable is assumed to leak.
func (p *Program) Escapes(f *Func, e ast.Expr) Escape {
	w := &escWalker{p: p, f: f, seenDefs: map[*Def]bool{}}
	path, esc := w.fromExpr(e, 0)
	return Escape{Escapes: esc, Path: path}
}

// escWalker carries one Escapes query.
type escWalker struct {
	p        *Program
	f        *Func
	seenDefs map[*Def]bool
}

func (w *escWalker) pos(n ast.Node) string {
	p := w.f.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// fromExpr climbs from the expression whose value we are tracking to
// its consuming context. Returns the escape path and verdict.
func (w *escWalker) fromExpr(e ast.Expr, depth int) ([]string, bool) {
	if depth > maxEscapeSteps {
		return []string{"flow too deep to follow"}, true
	}
	var cur ast.Node = e
	for {
		par := w.f.Parent(cur)
		if par == nil {
			return nil, false
		}
		switch par := par.(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.CompositeLit, *ast.TypeAssertExpr:
			// Value-preserving wrappers: the enclosing expression
			// carries (or embeds) the value.
			cur = par
		case *ast.SliceExpr:
			if exprIs(par.X, cur) {
				cur = par // reslicing shares the backing array
			} else {
				return nil, false // an index operand; the value is just read
			}
		case *ast.UnaryExpr:
			if par.Op == token.AND {
				cur = par // &lit: the pointer carries the value
			} else {
				return nil, false
			}
		case *ast.ReturnStmt:
			return []string{"returned (" + w.pos(par) + ")"}, true
		case *ast.SendStmt:
			if exprIs(par.Value, cur) {
				return []string{"sent on channel (" + w.pos(par) + ")"}, true
			}
			return nil, false
		case *ast.AssignStmt:
			return w.fromAssign(par, cur, depth)
		case *ast.ValueSpec:
			return w.fromValueSpec(par, cur, depth)
		case *ast.CallExpr:
			if exprIs(par.Fun, cur) {
				return nil, false // calling a value does not leak it
			}
			return w.fromCallArg(par, cur, depth)
		default:
			// Read-only contexts (conditions, arithmetic, indexing,
			// selector bases, statements that just evaluate): the
			// value does not leave the frame through them.
			return nil, false
		}
	}
}

func exprIs(e ast.Expr, n ast.Node) bool { return ast.Node(e) == n }

// fromAssign handles `lhs = cur` (and :=): a store to anything but a
// tracked local escapes; a tracked local continues the chain through
// its uses.
func (w *escWalker) fromAssign(as *ast.AssignStmt, cur ast.Node, depth int) ([]string, bool) {
	// Locate the matching left-hand side. Allocation expressions are
	// single-valued, so a 1:1 pairing always exists when cur is a
	// direct operand.
	idx := -1
	for i, r := range as.Rhs {
		if ast.Node(r) == cur {
			idx = i
			break
		}
	}
	if idx < 0 || len(as.Lhs) != len(as.Rhs) {
		return nil, false
	}
	lhs := unparen(as.Lhs[idx])
	id, isIdent := lhs.(*ast.Ident)
	if !isIdent {
		return []string{"stored to " + exprString(lhs) + " (" + w.pos(as) + ")"}, true
	}
	if id.Name == "_" {
		return nil, false
	}
	v := w.f.ObjOf(id)
	if v == nil {
		return nil, false
	}
	if !w.trackedVar(v) {
		// Address-taken, captured, package-level, …: the variable's
		// lifetime is not frame-local.
		return []string{"assigned to non-local " + id.Name + " (" + w.pos(as) + ")"}, true
	}
	d := w.defAt(v, as)
	if d == nil {
		return nil, false
	}
	step := "assigned to " + id.Name + " (" + w.pos(as) + ")"
	path, esc := w.fromDef(d, depth+1)
	if esc {
		return append([]string{step}, path...), true
	}
	return nil, false
}

func (w *escWalker) fromValueSpec(vs *ast.ValueSpec, cur ast.Node, depth int) ([]string, bool) {
	idx := -1
	for i, val := range vs.Values {
		if ast.Node(val) == cur {
			idx = i
			break
		}
	}
	if idx < 0 || len(vs.Names) != len(vs.Values) {
		return nil, false
	}
	id := vs.Names[idx]
	if id.Name == "_" {
		return nil, false
	}
	v := w.f.ObjOf(id)
	if v == nil {
		return nil, false
	}
	if !w.trackedVar(v) {
		return []string{"assigned to non-local " + id.Name + " (" + w.pos(vs) + ")"}, true
	}
	d := w.defAt(v, vs)
	if d == nil {
		return nil, false
	}
	step := "assigned to " + id.Name + " (" + w.pos(vs) + ")"
	path, esc := w.fromDef(d, depth+1)
	if esc {
		return append([]string{step}, path...), true
	}
	return nil, false
}

// fromCallArg asks the callee's parameter summary whether the argument
// outlives the call.
func (w *escWalker) fromCallArg(call *ast.CallExpr, cur ast.Node, depth int) ([]string, bool) {
	argIdx := -1
	for i, a := range call.Args {
		if ast.Node(a) == cur {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return nil, false
	}
	if w.p == nil || w.p.Callees == nil {
		return []string{"passed to call (" + w.pos(call) + ")"}, true
	}
	callees := w.p.Callees(w.f.Info, call)
	if len(callees) == 0 {
		return []string{"passed to unresolved call (" + w.pos(call) + ")"}, true
	}
	for _, callee := range callees {
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return []string{"passed to " + callee.Name() + " (" + w.pos(call) + ")"}, true
		}
		pi := paramIndex(sig, argIdx)
		if pi < 0 {
			continue
		}
		if w.p.paramEscapes(callee, pi) {
			return []string{"passed to " + callee.Name() + ", whose parameter " + paramName(sig, pi) + " escapes (" + w.pos(call) + ")"}, true
		}
	}
	return nil, false
}

// fromDef follows every use of an SSA definition (and every phi that
// merges it) looking for an escaping route.
func (w *escWalker) fromDef(d *Def, depth int) ([]string, bool) {
	if w.seenDefs[d] || depth > maxEscapeSteps {
		return nil, false
	}
	w.seenDefs[d] = true
	for _, id := range w.f.UsesOf(d) {
		if path, esc := w.fromExpr(id, depth+1); esc {
			return path, true
		}
	}
	for _, phi := range w.f.PhisOver(d) {
		if path, esc := w.fromDef(phi, depth+1); esc {
			return path, true
		}
	}
	return nil, false
}

func (w *escWalker) trackedVar(v *types.Var) bool {
	for _, tv := range w.f.Vars {
		if tv == v {
			return true
		}
	}
	return false
}

// defAt finds the definition of v created at the given site.
func (w *escWalker) defAt(v *types.Var, site ast.Node) *Def {
	for _, d := range w.f.Defs[v] {
		if d.Node == site {
			return d
		}
	}
	return nil
}

// paramEscapes reports whether the idx'th declared parameter of fn can
// outlive a call to fn (returned, stored, sent, or handed to a callee
// whose own parameter escapes). Unknown bodies are conservatively
// escaping; recursion bottoms out as escaping too.
func (p *Program) paramEscapes(fn *types.Func, idx int) bool {
	key := sumKey{fn, idx}
	p.mu.Lock()
	if v, ok := p.summaries[key]; ok {
		p.mu.Unlock()
		return v
	}
	// Mark in-progress: a recursive cycle resolves conservatively.
	p.summaries[key] = true
	p.mu.Unlock()

	result := p.computeParamEscape(fn, idx)

	p.mu.Lock()
	p.summaries[key] = result
	p.mu.Unlock()
	return result
}

func (p *Program) computeParamEscape(fn *types.Func, idx int) bool {
	if p.DeclOf == nil {
		return true
	}
	src, ok := p.DeclOf(fn)
	if !ok || src.Decl == nil {
		return true // external: unknown body
	}
	f := p.FuncOf(src)
	if f == nil || f.Approx {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return true
	}
	pv := sig.Params().At(idx)
	// Match the signature object to the tracked variable (they are the
	// same *types.Var for a declared function).
	var defs []*Def
	for v, dd := range f.Defs {
		if v == pv || (v.Name() == pv.Name() && v.Pos() == pv.Pos()) {
			defs = dd
			break
		}
	}
	if defs == nil {
		// The parameter is untracked (address-taken or captured):
		// assume it leaks.
		return !isBlankOrUnused(pv)
	}
	w := &escWalker{p: p, f: f, seenDefs: map[*Def]bool{}}
	for _, d := range defs {
		if d.Kind != DefParam {
			continue
		}
		if _, esc := w.fromDef(d, 0); esc {
			return true
		}
	}
	return false
}

func isBlankOrUnused(v *types.Var) bool {
	return v.Name() == "" || v.Name() == "_"
}

// paramIndex maps a call-site argument position to a declared
// parameter index, folding variadic tails onto the last parameter.
func paramIndex(sig *types.Signature, arg int) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if sig.Variadic() && arg >= n-1 {
		return n - 1
	}
	if arg < n {
		return arg
	}
	return -1
}

func paramName(sig *types.Signature, idx int) string {
	if idx < sig.Params().Len() {
		if n := sig.Params().At(idx).Name(); n != "" {
			return n
		}
	}
	return fmt.Sprintf("#%d", idx)
}

// exprString renders a short printable form of an assignment target.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "expression"
	}
}
