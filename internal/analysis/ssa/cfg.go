package ssa

import (
	"go/ast"
	"go/token"
)

// This file lowers a function body to the basic-block CFG the SSA
// construction runs on. Compound statements are decomposed: blocks
// hold only simple statements and branch conditions, and every
// control construct becomes edges. break/continue (labeled or not)
// and fallthrough are modeled exactly; goto marks the function
// approximate (no function in this repository uses it — the flag is a
// soundness valve, not a feature).

// cfgBuilder threads the under-construction CFG through the statement
// walk.
type cfgBuilder struct {
	fn   *Func
	cur  *Block
	exit *Block // synthetic sink for returns and panics

	// breaks and continues map the innermost (and labeled) enclosing
	// loop or switch to its break/continue targets.
	breaks    []loopTarget
	continues []loopTarget
}

type loopTarget struct {
	label string
	block *Block
}

func (c *cfgBuilder) newBlock() *Block {
	b := &Block{Index: -1}
	c.fn.Blocks = append(c.fn.Blocks, b)
	return b
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seal ends the current block with an unconditional edge to next and
// makes next current. A nil current block (after return/break) just
// switches.
func (c *cfgBuilder) seal(next *Block) {
	if c.cur != nil {
		addEdge(c.cur, next)
	}
	c.cur = next
}

// emit appends a simple node to the current block, opening a fresh
// (unreachable) block if control already left.
func (c *cfgBuilder) emit(n ast.Node) {
	if c.cur == nil {
		c.cur = c.newBlock()
	}
	c.cur.Nodes = append(c.cur.Nodes, n)
}

// buildCFG lowers the body and returns the entry block.
func buildCFG(fn *Func) *Block {
	c := &cfgBuilder{fn: fn}
	entry := c.newBlock()
	c.exit = c.newBlock()
	c.cur = entry
	c.stmts(fn.Decl.Body.List, "")
	if c.cur != nil {
		addEdge(c.cur, c.exit)
	}
	return entry
}

func (c *cfgBuilder) stmts(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the first statement of the list can legitimately carry
		// the enclosing label (labeled loops).
		l := ""
		if i == 0 {
			l = label
		}
		c.stmt(s, l)
	}
}

func (c *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List, "")
	case *ast.LabeledStmt:
		// Attach the label to the labeled construct; a label on a
		// simple statement is a goto target — approximate.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			c.stmt(s.Stmt, s.Label.Name)
		default:
			c.fn.Approx = true
			c.stmt(s.Stmt, "")
		}
	case *ast.IfStmt:
		c.ifStmt(s)
	case *ast.ForStmt:
		c.forStmt(s, label)
	case *ast.RangeStmt:
		c.rangeStmt(s, label)
	case *ast.SwitchStmt:
		c.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		c.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		c.selectStmt(s, label)
	case *ast.ReturnStmt:
		c.emit(s)
		c.seal(c.exit)
		c.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			c.jump(c.breaks, s.Label)
		case token.CONTINUE:
			c.jump(c.continues, s.Label)
		case token.GOTO:
			c.fn.Approx = true
			c.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by switchStmt; nothing to emit.
		}
	case nil:
	default:
		// Simple statements: assignments, declarations, expression
		// statements, inc/dec, send, defer, go.
		c.emit(s)
	}
}

// jump resolves a break/continue to its target and ends the block.
func (c *cfgBuilder) jump(stack []loopTarget, label *ast.Ident) {
	want := ""
	if label != nil {
		want = label.Name
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if want == "" || stack[i].label == want {
			c.seal(stack[i].block)
			c.cur = nil
			return
		}
	}
	// Unresolvable target (label out of scope): approximate.
	c.fn.Approx = true
	c.cur = nil
}

func (c *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		c.emit(s.Init)
	}
	c.emit(s.Cond)
	condBlock := c.cur
	condBlock.Cond = s.Cond
	then := c.newBlock()
	join := c.newBlock()
	addEdge(condBlock, then) // Succs[0]: true edge
	c.cur = then
	c.stmt(s.Body, "")
	c.seal(join)
	c.cur = nil
	if s.Else != nil {
		els := c.newBlock()
		addEdge(condBlock, els) // Succs[1]: false edge
		c.cur = els
		c.stmt(s.Else, "")
		c.seal(join)
	} else {
		addEdge(condBlock, join)
	}
	c.cur = join
}

func (c *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		c.emit(s.Init)
	}
	head := c.newBlock()
	body := c.newBlock()
	exitB := c.newBlock()
	post := head
	if s.Post != nil {
		post = c.newBlock()
	}
	c.seal(head)
	if s.Cond != nil {
		c.emit(s.Cond)
		head.Cond = s.Cond
		addEdge(head, body)  // true
		addEdge(head, exitB) // false
	} else {
		addEdge(head, body)
	}
	c.pushLoop(label, exitB, post)
	c.cur = body
	c.stmt(s.Body, "")
	c.popLoop()
	c.seal(post)
	if s.Post != nil {
		c.emit(s.Post)
		c.seal(head)
	}
	c.cur = exitB
}

func (c *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := c.newBlock()
	body := c.newBlock()
	exitB := c.newBlock()
	c.seal(head)
	// The range statement itself sits in the header: it (re)binds the
	// iteration variables on every entry to the body.
	head.Nodes = append(head.Nodes, s)
	addEdge(head, body)  // another iteration
	addEdge(head, exitB) // exhausted
	c.pushLoop(label, exitB, head)
	c.cur = body
	c.stmt(s.Body, "")
	c.popLoop()
	c.seal(head)
	c.cur = exitB
}

func (c *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		c.emit(s.Init)
	}
	if s.Tag != nil {
		c.emit(s.Tag)
	}
	c.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, len(cc.List))
		for i, e := range cc.List {
			nodes[i] = e
		}
		return nodes
	})
}

func (c *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		c.emit(s.Init)
	}
	c.emit(s.Assign)
	c.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node { return nil })
}

// caseClauses lowers a switch body: the dispatch block fans out to one
// block per clause (plus the exit when no default exists), clause
// bodies converge on the exit, and fallthrough chains a clause to the
// next clause's body.
func (c *cfgBuilder) caseClauses(body *ast.BlockStmt, label string, guards func(*ast.CaseClause) []ast.Node) {
	dispatch := c.cur
	if dispatch == nil {
		dispatch = c.newBlock()
		c.cur = dispatch
	}
	exitB := c.newBlock()
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = c.newBlock()
		addEdge(dispatch, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(dispatch, exitB)
	}
	c.pushBreak(label, exitB)
	for i, cc := range clauses {
		c.cur = blocks[i]
		for _, g := range guards(cc) {
			c.emit(g)
		}
		fall := false
		for _, st := range cc.Body {
			if bs, ok := st.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH {
				fall = true
				continue
			}
			c.stmt(st, "")
		}
		if fall && i+1 < len(blocks) {
			c.seal(blocks[i+1])
			c.cur = nil
		} else {
			c.seal(exitB)
			c.cur = nil
		}
	}
	c.popBreak()
	c.cur = exitB
}

func (c *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := c.cur
	if dispatch == nil {
		dispatch = c.newBlock()
		c.cur = dispatch
	}
	exitB := c.newBlock()
	c.pushBreak(label, exitB)
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		b := c.newBlock()
		addEdge(dispatch, b)
		c.cur = b
		if cc.Comm != nil {
			c.emit(cc.Comm)
		}
		c.stmts(cc.Body, "")
		c.seal(exitB)
		c.cur = nil
	}
	c.popBreak()
	if !any {
		// select{} blocks forever.
		c.cur = nil
		_ = exitB
		return
	}
	c.cur = exitB
}

func (c *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	c.breaks = append(c.breaks, loopTarget{"", brk})
	c.continues = append(c.continues, loopTarget{"", cont})
	if label != "" {
		c.breaks = append(c.breaks, loopTarget{label, brk})
		c.continues = append(c.continues, loopTarget{label, cont})
	}
}

func (c *cfgBuilder) popLoop() {
	n := 1
	if len(c.breaks) >= 2 && c.breaks[len(c.breaks)-1].label != "" {
		n = 2
	}
	c.breaks = c.breaks[:len(c.breaks)-n]
	c.continues = c.continues[:len(c.continues)-n]
}

func (c *cfgBuilder) pushBreak(label string, brk *Block) {
	c.breaks = append(c.breaks, loopTarget{"", brk})
	if label != "" {
		c.breaks = append(c.breaks, loopTarget{label, brk})
	}
}

func (c *cfgBuilder) popBreak() {
	n := 1
	if len(c.breaks) >= 2 && c.breaks[len(c.breaks)-1].label != "" {
		n = 2
	}
	c.breaks = c.breaks[:len(c.breaks)-n]
}

// pruneAndOrder drops unreachable blocks and renumbers the survivors
// in reverse postorder from entry, so Blocks[0] is the entry and every
// dominator computation can iterate in RPO.
func pruneAndOrder(fn *Func, entry *Block) {
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(entry)
	// Reverse postorder.
	fn.Blocks = fn.Blocks[:0]
	for i := len(post) - 1; i >= 0; i-- {
		b := post[i]
		b.Index = len(fn.Blocks)
		b.postnum = i
		fn.Blocks = append(fn.Blocks, b)
	}
	// Strip edges into pruned blocks.
	for _, b := range fn.Blocks {
		preds := b.Preds[:0]
		for _, p := range b.Preds {
			if seen[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
	}
}
