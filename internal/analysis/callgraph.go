package analysis

import (
	"go/ast"
	"go/types"
	"sync"
)

// This file builds the lightweight dataflow layer the allocation pass
// runs on: a module-wide call graph in the RTA style. Edges come from
// two sources — static calls resolved through the type-checker's Uses
// map, and interface-method calls resolved to every concrete method of
// every module type that implements the interface (rapid type analysis
// without the instantiation filter: any implementing type counts,
// which over-approximates but never misses a callee inside the
// module). Bodies of function literals are attributed to their
// enclosing declared function, so a closure's calls and allocations
// belong to the function that created it.
//
// Each call edge records whether its call site sits inside a for/range
// loop (or inside a function literal, which a per-cycle driver only
// creates to invoke repeatedly). That bit powers loop-rooted hotness:
// from a loop root like (*machine.Machine).Run, only code reached from
// inside the cycle loop is hot — the per-run setup above the loop is
// not. See docs/ANALYSIS.md.

// CallGraph is a module-wide call graph over the loaded packages.
type CallGraph struct {
	nodes map[*types.Func]*cgNode
	// namedTypes are all named (non-interface) types declared in the
	// loaded packages, the RTA universe for interface dispatch.
	namedTypes []*types.Named
	// implMu guards implCache: resolution happens both during the
	// single-threaded build and later from Callees, which concurrent
	// passes may call through the snapshot's value-flow program.
	implMu sync.Mutex
	// implCache memoizes interface-method resolution.
	implCache map[*types.Func][]*types.Func
}

// cgNode is one declared function with a body.
type cgNode struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	edges []cgEdge
}

// cgEdge is one call site: the callee, whether the site is inside a
// loop (or function literal) of the caller, and whether it sits in
// exempt context — panic arguments, return statements, or a block
// guarded by an interface non-nil check — through which hotness does
// not propagate (a diagnostic dump inside panic(...) is not hot).
type cgEdge struct {
	callee *types.Func
	inLoop bool
	exempt bool
}

// HotRoot names a root of hot-path reachability. With LoopOnly set,
// only the root's loop bodies (and function literals) seed hotness —
// straight-line setup code in the root stays cold.
type HotRoot struct {
	// Pkg is the import path ("ruu/internal/machine").
	Pkg string
	// Recv is the bare receiver type name ("Machine"), empty for a
	// plain function.
	Recv string
	// Func is the function or method name ("Run").
	Func string
	// LoopOnly marks a driver whose per-cycle work is its loop body.
	LoopOnly bool
}

// BuildCallGraph constructs the call graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:     map[*types.Func]*cgNode{},
		implCache: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				g.namedTypes = append(g.namedTypes, named)
			}
		}
		for _, fd := range funcDecls(pkg) {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || fd.Body == nil {
				continue
			}
			g.nodes[fn] = &cgNode{fn: fn, pkg: pkg, decl: fd}
		}
	}
	for _, n := range g.nodes {
		g.collectEdges(n)
	}
	return g
}

// collectEdges walks one function body recording call edges with
// their loop and exemption context.
func (g *CallGraph) collectEdges(n *cgNode) {
	info := n.pkg.Info
	var walk func(node ast.Node, inLoop, exempt bool)
	walk = func(node ast.Node, inLoop, exempt bool) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.ForStmt:
				walk(x.Init, inLoop, exempt)
				walk(x.Cond, true, exempt)
				walk(x.Post, true, exempt)
				walk(x.Body, true, exempt)
				return false
			case *ast.RangeStmt:
				walk(x.X, inLoop, exempt)
				walk(x.Body, true, exempt)
				return false
			case *ast.FuncLit:
				// A closure created by a cycle driver exists to run
				// inside the cycle: treat its body as loop context.
				walk(x.Body, true, exempt)
				return false
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					walk(r, inLoop, true)
				}
				return false
			case *ast.IfStmt:
				walk(x.Init, inLoop, exempt)
				walk(x.Cond, inLoop, exempt)
				walk(x.Body, inLoop, exempt || ifaceNotNilCond(n.pkg, x.Cond))
				walk(x.Else, inLoop, exempt)
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						for _, a := range x.Args {
							walk(a, inLoop, true)
						}
						return false
					}
				}
				for _, callee := range g.callees(info, x) {
					n.edges = append(n.edges, cgEdge{callee, inLoop, exempt})
				}
			}
			return true
		})
	}
	walk(n.decl.Body, false, false)
}

// Callees resolves a call expression to the function objects it may
// invoke: one for a static call, every module implementation for an
// interface-method call, none for builtins and calls through plain
// function values. This is the resolver the snapshot's value-flow
// program injects into the ssa package. Safe for concurrent use.
func (g *CallGraph) Callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	return g.callees(info, call)
}

// callees is the internal resolver behind Callees.
func (g *CallGraph) callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	// A generic call f[T](...) or f[T1, T2](...) instantiates through
	// an index expression; the callee object sits under it. (An index
	// into a slice/map of funcs also parses this way — then the inner
	// expression resolves to a variable, not a function, and falls
	// through to nil below.)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			if types.IsInterface(sel.Recv()) {
				return g.implementations(m, sel.Recv().Underlying().(*types.Interface))
			}
			return []*types.Func{m}
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// isFuncExpr reports whether e resolves to a function object — which
// makes an enclosing IndexExpr a generic instantiation rather than a
// container index.
func isFuncExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := info.Uses[e].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			_, isFn := sel.Obj().(*types.Func)
			return isFn
		}
		_, ok := info.Uses[e.Sel].(*types.Func)
		return ok
	}
	return false
}

// implementations resolves an interface method to the corresponding
// concrete method of every module type implementing the interface.
func (g *CallGraph) implementations(m *types.Func, itf *types.Interface) []*types.Func {
	g.implMu.Lock()
	defer g.implMu.Unlock()
	if out, ok := g.implCache[m]; ok {
		return out
	}
	var out []*types.Func
	for _, named := range g.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, itf) && !types.Implements(ptr, itf) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			out = append(out, impl)
		}
	}
	g.implCache[m] = out
	return out
}

// Lookup finds a declared function by package path, receiver type name
// (empty for plain functions) and name; nil if absent.
func (g *CallGraph) Lookup(pkgPath, recv, name string) *types.Func {
	for fn, n := range g.nodes {
		if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
			continue
		}
		if recvTypeName(n.decl) == recv {
			return fn
		}
	}
	return nil
}

// Decl returns the declaration node and package of a graph function,
// or nil when fn is not in the graph (no body in the loaded packages).
func (g *CallGraph) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	n := g.nodes[fn]
	if n == nil {
		return nil, nil
	}
	return n.decl, n.pkg
}

// Hot computes the set of fully hot functions: everything reachable
// from a non-loop root, plus everything reachable from the loop bodies
// of a loop root. Loop roots themselves are NOT in the returned set —
// only their loop-context sites are hot, which callers must handle via
// the root's declaration (see hotpathalloc). Edges in exempt context
// do not propagate, and functions named in coldFuncs are neither
// marked nor traversed (trap-boundary recovery such as Flush/Reset
// runs at interrupt rate, not cycle rate).
func (g *CallGraph) Hot(roots []HotRoot, coldFuncs []string) map[*types.Func]bool {
	cold := map[string]bool{}
	for _, n := range coldFuncs {
		cold[n] = true
	}
	hot := map[*types.Func]bool{}
	var work []*types.Func
	seed := func(fn *types.Func) {
		if fn != nil && !hot[fn] && !cold[fn.Name()] {
			hot[fn] = true
			work = append(work, fn)
		}
	}
	for _, r := range roots {
		fn := g.Lookup(r.Pkg, r.Recv, r.Func)
		if fn == nil {
			continue
		}
		if !r.LoopOnly {
			seed(fn)
			continue
		}
		if n := g.nodes[fn]; n != nil {
			for _, e := range n.edges {
				if e.inLoop && !e.exempt {
					seed(e.callee)
				}
			}
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		n := g.nodes[fn]
		if n == nil {
			continue // no body here (stdlib or interface method)
		}
		for _, e := range n.edges {
			if !e.exempt {
				seed(e.callee)
			}
		}
	}
	return hot
}
