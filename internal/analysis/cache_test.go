package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCacheWarmSpeedupAndIdentity is the acceptance gate for the
// incremental cache: over the real module, a warm run on an unchanged
// tree must answer entirely from the cache, at least 5× faster than the
// cold run that populated it, with byte-identical findings.
func TestCacheWarmSpeedupAndIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-module cache benchmark")
	}
	root := repoRoot(t)
	cacheDir := t.TempDir()
	passes := DefaultPasses("ruu")

	coldStart := time.Now()
	coldFindings, _, coldStats, err := CheckCached(root, cacheDir, passes, true)
	if err != nil {
		t.Fatalf("cold CheckCached: %v", err)
	}
	coldElapsed := time.Since(coldStart)
	if coldStats.FullHit {
		t.Fatal("cold run reported a full cache hit")
	}

	warmStart := time.Now()
	warmFindings, _, warmStats, err := CheckCached(root, cacheDir, passes, false)
	if err != nil {
		t.Fatalf("warm CheckCached: %v", err)
	}
	warmElapsed := time.Since(warmStart)

	if !warmStats.FullHit {
		t.Errorf("warm run on unchanged tree: FullHit=false (%d misses)", warmStats.Misses)
	}
	if warmStats.LoadElapsed != 0 {
		t.Errorf("warm run loaded the module (%v); a full hit must not", warmStats.LoadElapsed)
	}
	if coldElapsed < 5*warmElapsed {
		t.Errorf("warm run not ≥5× faster: cold %v, warm %v (%.1fx)",
			coldElapsed, warmElapsed, float64(coldElapsed)/float64(warmElapsed))
	}

	coldJSON, err := json.Marshal(coldFindings)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(warmFindings)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("cached findings are not byte-identical to the cold run's:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// writeCacheModule lays out a two-package module (b imports a) for the
// invalidation tests.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachemod\n\ngo 1.22\n",
		"a/a.go": "package a\n\n// V is exported state.\nvar V = 1\n\nfunc Get() int { return V }\n",
		"b/b.go": "package b\n\nimport \"cachemod/a\"\n\nfunc Use() int { return a.Get() }\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCachePerPackageInvalidation edits one leaf package and checks the
// blast radius: a CacheDeps pass keeps the untouched package's entry, a
// CacheModule pass loses everything.
func TestCachePerPackageInvalidation(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	// One pass per CacheMode: nilness is CacheDeps, policycontract is
	// CacheModule.
	passes := []*Pass{NewNilness(nil), NewPolicyContract(nil)}
	if passes[0].Cache != CacheDeps || passes[1].Cache != CacheModule {
		t.Fatal("test premise broken: pass cache modes changed")
	}

	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 0 || stats.Misses != 4 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/4", stats.Hits, stats.Misses)
	}
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if !stats.FullHit || stats.Hits != 4 {
		t.Fatalf("unchanged rerun: hits=%d fullHit=%v, want 4/true", stats.Hits, stats.FullHit)
	}

	// Editing leaf package b: a's nilness entry is the only survivor —
	// b's own hash moved, and the module hash (policycontract) moved.
	bPath := filepath.Join(dir, "b", "b.go")
	if err := os.WriteFile(bPath, []byte("package b\n\nimport \"cachemod/a\"\n\nfunc Use() int { return a.Get() + 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 1 || stats.Misses != 3 {
		t.Fatalf("after editing b: hits=%d misses=%d, want 1/3", stats.Hits, stats.Misses)
	}

	// Editing a invalidates b's deps-entry too (b imports a).
	aPath := filepath.Join(dir, "a", "a.go")
	if err := os.WriteFile(aPath, []byte("package a\n\n// V is exported state.\nvar V = 2\n\nfunc Get() int { return V }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 0 || stats.Misses != 4 {
		t.Fatalf("after editing a: hits=%d misses=%d, want 0/4", stats.Hits, stats.Misses)
	}
}

// TestCachePassVersionInvalidates pins the pass-version key component:
// bumping Version orphans every entry of that pass and only that pass.
func TestCachePassVersionInvalidates(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	passes := []*Pass{NewNilness(nil), NewPolicyContract(nil)}
	if _, _, _, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	}
	passes[0].Version++
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 2 || stats.Misses != 2 {
		t.Fatalf("after version bump: hits=%d misses=%d, want 2/2", stats.Hits, stats.Misses)
	}
}

// TestCacheColdIgnoresEntries: -cold reruns everything but repopulates,
// so the next warm run full-hits.
func TestCacheColdIgnoresEntries(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	passes := []*Pass{NewNilness(nil)}
	if _, _, _, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	}
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, true); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("cold rerun: hits=%d misses=%d, want 0/2", stats.Hits, stats.Misses)
	}
	if _, _, stats, err := CheckCached(dir, cacheDir, passes, false); err != nil {
		t.Fatal(err)
	} else if !stats.FullHit {
		t.Fatalf("warm after cold: fullHit=false (%d misses)", stats.Misses)
	}
}

// TestCacheSuppressionInvalidates: adding a suppression marker is a
// file edit, so the affected package re-runs and the cached findings
// track the marker.
func TestCacheSuppressionInvalidates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module supmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "p")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	body := "package p\n\nfunc mayFail() error { return nil }\n\nfunc drop() {\n\tmayFail()%s\n}\n"
	if err := os.WriteFile(filepath.Join(src, "p.go"), []byte(fmt.Sprintf(body, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	passes := []*Pass{NewNilness(nil)}
	findings, _, _, err := CheckCached(dir, cacheDir, passes, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 discarded error: %v", len(findings), findings)
	}
	if err := os.WriteFile(filepath.Join(src, "p.go"), []byte(fmt.Sprintf(body, " //ruulint:ok nilness fire-and-forget by design")), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, _, stats, err := CheckCached(dir, cacheDir, passes, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullHit {
		t.Error("marker edit did not invalidate the package entry")
	}
	if len(findings) != 0 {
		t.Errorf("suppressed finding still reported: %v", findings)
	}
}
