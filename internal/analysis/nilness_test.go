package analysis

import "testing"

func TestNilnessFixtures(t *testing.T) {
	pkg := loadFixture(t, "nilness")
	checkWants(t, pkg, NewNilness(nil))
}

func TestNilnessScope(t *testing.T) {
	pkg := loadFixture(t, "nilness")
	findings := Check([]*Package{pkg}, []*Pass{NewNilness([]string{"elsewhere"})})
	if len(findings) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", findings)
	}
}
