package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// This file is the one place the analysis commands (ruulint, ruudfa)
// define their machine-output flags. The two CLIs had drifted — ruudfa
// grew -json and -sarif but not -out or -timings — and flag drift in
// tooling is the same disease the passes hunt in the simulator:
// conventions that hold only where someone remembered. Both mains now
// register this set; cliflags_test.go pins the parity.

// OutputFlags is the shared machine-output flag surface: terminal JSON
// lines, JSON-lines and SARIF file artifacts, and the timing summary in
// human (stderr) and JSON-file form.
type OutputFlags struct {
	// JSON emits one JSON object per finding/result line on stdout.
	JSON bool
	// Out also writes the JSON lines to a file.
	Out string
	// SARIF also writes a SARIF 2.1.0 log to a file.
	SARIF string
	// Timings prints a wall-clock summary to stderr.
	Timings bool
	// TimingsOut writes the same summary as one JSON document — the CI
	// artifact the benchmark trajectory reads.
	TimingsOut string
}

// RegisterOutputFlags registers the shared flag set on fs (the
// package-level flag.CommandLine in both mains) and returns the
// destination struct. Names, defaults, and usage strings are defined
// here once so the commands cannot drift.
func RegisterOutputFlags(fs *flag.FlagSet) *OutputFlags {
	of := &OutputFlags{}
	fs.BoolVar(&of.JSON, "json", false, "emit one JSON object per line on stdout")
	fs.StringVar(&of.Out, "out", "", "also write the JSON lines to this file")
	fs.StringVar(&of.SARIF, "sarif", "", "also write a SARIF 2.1.0 log to this file")
	fs.BoolVar(&of.Timings, "timings", false, "print a wall-clock timing summary to stderr")
	fs.StringVar(&of.TimingsOut, "timings-out", "", "write the timing summary as JSON to this file")
	return of
}

// TimingsReport is the -timings-out JSON document and the source of the
// -timings stderr rendering.
type TimingsReport struct {
	// Command is the producing binary ("ruulint").
	Command string `json:"command"`
	// TotalNS is end-to-end wall clock for the analysis (load + passes).
	TotalNS int64 `json:"total_ns"`
	// ScanNS is the cache scan+probe cost (cache runs only).
	ScanNS int64 `json:"scan_ns,omitempty"`
	// LoadNS is the parse+typecheck cost; zero on a full cache hit.
	LoadNS int64 `json:"load_ns,omitempty"`
	// Findings is the total finding count.
	Findings int `json:"findings"`
	// CacheHits/CacheMisses count (pass, package) pairs; CacheFullHit
	// marks a run answered without loading. All zero when the cache is
	// off.
	CacheHits    int  `json:"cache_hits,omitempty"`
	CacheMisses  int  `json:"cache_misses,omitempty"`
	CacheFullHit bool `json:"cache_full_hit,omitempty"`
	// Passes is the per-pass breakdown in pass order.
	Passes []PassTimingJSON `json:"passes"`
}

// PassTimingJSON is one pass's slice of the report.
type PassTimingJSON struct {
	Name      string `json:"name"`
	Findings  int    `json:"findings"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// NewTimingsReport assembles the report from a check run's outputs.
func NewTimingsReport(command string, total time.Duration, timings []PassTiming, findings int, stats CacheStats) TimingsReport {
	r := TimingsReport{
		Command:      command,
		TotalNS:      total.Nanoseconds(),
		ScanNS:       stats.ScanElapsed.Nanoseconds(),
		LoadNS:       stats.LoadElapsed.Nanoseconds(),
		Findings:     findings,
		CacheHits:    stats.Hits,
		CacheMisses:  stats.Misses,
		CacheFullHit: stats.FullHit,
		Passes:       make([]PassTimingJSON, 0, len(timings)),
	}
	for _, pt := range timings {
		r.Passes = append(r.Passes, PassTimingJSON{
			Name: pt.Name, Findings: pt.Findings, ElapsedNS: pt.Elapsed.Nanoseconds(),
		})
	}
	return r
}

// Print renders the human form, one aligned line per pass plus cache
// and total lines, prefixed with the command name.
func (r TimingsReport) Print(w io.Writer) {
	for _, pt := range r.Passes {
		fmt.Fprintf(w, "%s: %-16s %4d finding(s) %12s\n",
			r.Command, pt.Name, pt.Findings, time.Duration(pt.ElapsedNS).Round(time.Microsecond))
	}
	if r.ScanNS > 0 || r.CacheHits > 0 || r.CacheMisses > 0 {
		fmt.Fprintf(w, "%s: cache %d hit(s), %d miss(es), scan %s\n",
			r.Command, r.CacheHits, r.CacheMisses, time.Duration(r.ScanNS).Round(time.Microsecond))
	}
	if r.LoadNS > 0 {
		fmt.Fprintf(w, "%s: load %s\n", r.Command, time.Duration(r.LoadNS).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "%s: %-16s %4d finding(s) %12s\n",
		r.Command, "total", r.Findings, time.Duration(r.TotalNS).Round(time.Microsecond))
}

// WriteFile writes the report as indented JSON (the CI artifact form).
func (r TimingsReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
