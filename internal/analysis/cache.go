package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file is the persistent incremental cache behind `ruulint
// -cache`: per-(pass, package) finding sets keyed by content hashes, so
// a lint of an unchanged tree answers from disk without type-checking
// anything — the load is ~98% of a cold run's wall clock — and an
// incremental edit re-analyzes only the packages whose hash inputs
// moved.
//
// The key construction is what makes replaying a cached entry safe:
//
//	key = SHA-256(format version, module dir, pass name, pass version,
//	              package path, dependency hash)
//
// where the dependency hash is, per the pass's CacheMode, either the
// package's deps-hash — its own file contents plus the file contents of
// every in-module package it transitively imports — or the module hash
// over every package's files (for call-graph passes, where interface
// dispatch can route through a package the importer never mentions).
// File contents cover everything else a pass can observe: suppression
// markers are comments in the hashed files, scope is a function of the
// package path, and pass configuration changes arrive as pass-version
// bumps (Pass.Version exists precisely to be bumped when logic or
// message formats change).
//
// Hashing needs file contents and import clauses only, so the scan
// parses with parser.ImportsOnly — two orders of magnitude cheaper than
// the full load — while walking the same directories, honoring the same
// build constraints, and therefore seeing the same package set as
// Load (the scan reuses the loader's helpers). Entries are one JSON
// file each under the cache directory, written atomically; a corrupt or
// missing entry is a miss, never an error. See docs/ANALYSIS.md (v4).

// cacheFormat invalidates every entry when the entry layout or key
// recipe itself changes.
const cacheFormat = "ruulint-cache-v1"

// CacheStats reports what a CheckCached run did, for the -timings
// summary and the warm-vs-cold assertions in CI.
type CacheStats struct {
	// Hits and Misses count (pass, package) pairs.
	Hits, Misses int
	// FullHit marks a run answered entirely from the cache, skipping
	// the load.
	FullHit bool
	// ScanElapsed is the cost of hashing the tree and probing entries.
	ScanElapsed time.Duration
	// LoadElapsed is the cost of the full parse+typecheck, zero on a
	// full hit.
	LoadElapsed time.Duration
}

// cacheEntry is the on-disk format of one (pass, package) result.
type cacheEntry struct {
	Format   string    `json:"format"`
	Pass     string    `json:"pass"`
	Version  int       `json:"version"`
	Package  string    `json:"package"`
	Findings []Finding `json:"findings"`
}

// pkgScan is one package's hash inputs.
type pkgScan struct {
	path    string   // import path
	dir     string   // directory
	hash    [32]byte // SHA-256 of the package's (included) file names+contents
	imports []string // in-module imports, sorted
}

// moduleScan is the hashed view of the whole module.
type moduleScan struct {
	modPath, dir string
	pkgs         []*pkgScan          // sorted by import path
	depsHash     map[string][32]byte // package → hash incl. transitive in-module deps
	moduleHash   [32]byte
}

// scanModule hashes the module's packages without type-checking,
// walking exactly the directories Load would load.
func scanModule(dir string) (*moduleScan, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	scan := &moduleScan{modPath: modPath, dir: root, depsHash: map[string][32]byte{}}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (len(name) > 0 && (name[0] == '.' || name[0] == '_') || name == "testdata") {
			return filepath.SkipDir
		}
		ps, err := scanPackage(path, root, modPath)
		if err != nil || ps == nil {
			return err
		}
		scan.pkgs = append(scan.pkgs, ps)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(scan.pkgs, func(i, j int) bool { return scan.pkgs[i].path < scan.pkgs[j].path })

	byPath := map[string]*pkgScan{}
	mh := sha256.New()
	for _, ps := range scan.pkgs {
		byPath[ps.path] = ps
		fmt.Fprintf(mh, "%s\n", ps.path)
		mh.Write(ps.hash[:])
	}
	copy(scan.moduleHash[:], mh.Sum(nil))
	for _, ps := range scan.pkgs {
		depsHashOf(ps, byPath, scan.depsHash)
	}
	return scan, nil
}

// scanPackage hashes one directory's included files and collects its
// in-module imports; nil when the directory holds no non-test Go files.
func scanPackage(dir, root, modPath string) (*pkgScan, error) {
	names, err := goFileNames(dir)
	if err != nil || len(names) == 0 {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	imp := modPath
	if rel != "." {
		imp = modPath + "/" + filepath.ToSlash(rel)
	}
	ps := &pkgScan{path: imp, dir: dir}
	h := sha256.New()
	seen := map[string]bool{}
	fset := token.NewFileSet()
	included := 0
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		// ImportsOnly stops after the import block but still records the
		// comments fileExcluded needs (they precede the package clause).
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly|parser.ParseComments)
		if err != nil {
			// Unparseable file: hash it anyway (the content still decides
			// validity) and let the full load surface the real error.
			fmt.Fprintf(h, "%s\n%d\n", name, len(data))
			h.Write(data)
			included++
			continue
		}
		if fileExcluded(f) {
			continue
		}
		fmt.Fprintf(h, "%s\n%d\n", name, len(data))
		h.Write(data)
		included++
		for _, is := range f.Imports {
			p := importPathOf(is.Path.Value)
			if (p == modPath || len(p) > len(modPath) && p[:len(modPath)+1] == modPath+"/") && !seen[p] {
				seen[p] = true
				ps.imports = append(ps.imports, p)
			}
		}
	}
	if included == 0 {
		return nil, nil
	}
	sort.Strings(ps.imports)
	copy(ps.hash[:], h.Sum(nil))
	return ps, nil
}

// importPathOf strips the quotes from an import spec path literal.
func importPathOf(lit string) string {
	if len(lit) >= 2 && lit[0] == '"' && lit[len(lit)-1] == '"' {
		return lit[1 : len(lit)-1]
	}
	return lit
}

// depsHashOf memoizes the package's hash combined with its in-module
// transitive dependencies' hashes (imports are acyclic in Go, so plain
// recursion terminates).
func depsHashOf(ps *pkgScan, byPath map[string]*pkgScan, memo map[string][32]byte) [32]byte {
	if h, ok := memo[ps.path]; ok {
		return h
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", ps.path)
	h.Write(ps.hash[:])
	for _, imp := range ps.imports {
		dep, ok := byPath[imp]
		if !ok {
			continue // not a loadable package (pruned dir); Load will complain if real
		}
		dh := depsHashOf(dep, byPath, memo)
		fmt.Fprintf(h, "%s\n", imp)
		h.Write(dh[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	memo[ps.path] = out
	return out
}

// entryKey derives the content-hash cache key of one (pass, package)
// pair.
func entryKey(scan *moduleScan, p *Pass, ps *pkgScan) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%d\n%s\n", cacheFormat, scan.dir, p.Name, p.Version, ps.path)
	if p.Cache == CacheModule {
		h.Write(scan.moduleHash[:])
	} else {
		dh := scan.depsHash[ps.path]
		h.Write(dh[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// readEntry loads one cache entry; ok is false on any miss, mismatch,
// or decode failure.
func readEntry(cacheDir, key string, p *Pass, pkgPath string) (cacheEntry, bool) {
	var e cacheEntry
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return e, false
	}
	if json.Unmarshal(data, &e) != nil {
		return e, false
	}
	if e.Format != cacheFormat || e.Pass != p.Name || e.Version != p.Version || e.Package != pkgPath {
		return e, false
	}
	return e, true
}

// writeEntry persists one entry atomically (write-rename, so a
// concurrent reader sees either nothing or a complete entry).
func writeEntry(cacheDir, key string, e cacheEntry) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(cacheDir, key+".json"))
}

// CheckCached is the incremental front end to CheckSnapshot: it hashes
// the module rooted at dir, answers every (pass, package) pair it can
// from cacheDir, and loads/type-checks only when at least one pair
// missed — running exactly the passes that missed somewhere, on exactly
// the packages they missed, and persisting the fresh results. With cold
// set, existing entries are ignored (but fresh ones are still written),
// which is how a cache directory is (re)populated.
//
// The merged findings are identical — byte for byte, in the same total
// order — to what CheckSnapshot over a fresh load would produce,
// because entries store the final (suppression-filtered) finding sets
// and SortFindings is a total order.
func CheckCached(dir, cacheDir string, passes []*Pass, cold bool) ([]Finding, []PassTiming, CacheStats, error) {
	var stats CacheStats
	scanStart := time.Now()
	scan, err := scanModule(dir)
	if err != nil {
		return nil, nil, stats, err
	}

	type pair struct{ pass, pkg int }
	keys := make(map[pair]string, len(passes)*len(scan.pkgs))
	cached := make(map[pair][]Finding)
	missed := make(map[pair]bool)
	for pi, p := range passes {
		for ki, ps := range scan.pkgs {
			pr := pair{pi, ki}
			keys[pr] = entryKey(scan, p, ps)
			if cold {
				missed[pr] = true
				continue
			}
			if e, ok := readEntry(cacheDir, keys[pr], p, ps.path); ok {
				cached[pr] = e.Findings
				stats.Hits++
			} else {
				missed[pr] = true
			}
		}
	}
	stats.Misses = len(missed)
	stats.ScanElapsed = time.Since(scanStart)

	timings := make([]PassTiming, len(passes))
	for i, p := range passes {
		timings[i].Name = p.Name
	}
	var out []Finding
	if len(missed) == 0 {
		for pr, fs := range cached {
			out = append(out, fs...)
			timings[pr.pass].Findings += len(fs)
		}
		SortFindings(out)
		stats.FullHit = true
		return out, timings, stats, nil
	}

	loadStart := time.Now()
	mod, err := Load(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.LoadElapsed = time.Since(loadStart)
	// The scan and the load walk the same tree with the same exclusion
	// rules; if they ever disagree, replaying entries against the wrong
	// package set would corrupt the merge, so refuse loudly.
	if len(mod.Packages) != len(scan.pkgs) {
		return nil, nil, stats, fmt.Errorf("cache scan saw %d packages, load saw %d; not caching", len(scan.pkgs), len(mod.Packages))
	}
	for i, pkg := range mod.Packages {
		if pkg.Path != scan.pkgs[i].path {
			return nil, nil, stats, fmt.Errorf("cache scan package %q, load package %q; not caching", scan.pkgs[i].path, pkg.Path)
		}
	}

	snap := NewSnapshot(mod.Packages)
	suppCache := make(map[int]map[string]map[int]map[string]bool)
	suppOf := func(ki int) map[string]map[int]map[string]bool {
		if s, ok := suppCache[ki]; ok {
			return s
		}
		s := suppressedPasses(mod.Packages[ki])
		suppCache[ki] = s
		return s
	}
	for pi, p := range passes {
		ran := false
		for ki := range scan.pkgs {
			if !missed[pair{pi, ki}] {
				continue
			}
			if !ran {
				ran = true
				if p.Init != nil {
					start := time.Now()
					p.Init(snap)
					timings[pi].Elapsed += time.Since(start)
				}
			}
			pkg := mod.Packages[ki]
			start := time.Now()
			var fs []Finding
			suppressed := suppOf(ki)
			for _, f := range p.Run(pkg) {
				if suppressed[f.Pos.Filename][f.Pos.Line][f.Pass] {
					continue
				}
				fs = append(fs, f)
			}
			timings[pi].Elapsed += time.Since(start)
			pr := pair{pi, ki}
			cached[pr] = fs
			if err := writeEntry(cacheDir, keys[pr], cacheEntry{
				Format: cacheFormat, Pass: p.Name, Version: p.Version,
				Package: pkg.Path, Findings: fs,
			}); err != nil {
				return nil, nil, stats, err
			}
		}
	}
	for pr, fs := range cached {
		out = append(out, fs...)
		timings[pr.pass].Findings += len(fs)
	}
	SortFindings(out)
	return out, timings, stats, nil
}
