package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

// The repo-level tests (tree-clean gate, race test, cache test) all
// need the module loaded and type-checked — about four seconds of work.
// loadRepo does it once per test binary; the Module is read-only by
// convention (tests build their own Snapshots and pass sets over it).
var (
	repoOnce sync.Once
	repoMod  *Module
	repoErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	repoOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			repoErr = err
			return
		}
		repoMod, repoErr = Load(root)
	})
	if repoErr != nil {
		t.Fatalf("load repo: %v", repoErr)
	}
	return repoMod
}

// repoRoot returns the module root directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}
