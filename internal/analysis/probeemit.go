package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// engineMethods is the method-set fingerprint identifying an
// instruction-issue engine (the issue.Engine surface, by name, so the
// pass also works on fixture packages that do not import the real
// interface).
var engineMethods = []string{"BeginCycle", "TryIssue", "Flush", "Retired", "InFlight", "Drained"}

// engineEntryPoints are the per-cycle methods the machine loop calls;
// the emission obligation is checked at these roots, with helper
// methods contributing through the call graph. Reset and Flush are
// deliberately absent: they legitimately clear counters and entries
// without per-instruction events (a flush after a precise trap is not a
// squash of architecturally-issued instructions).
var engineEntryPoints = map[string]bool{
	"BeginCycle": true, "Dispatch": true, "TryIssue": true,
	"TryReadCond": true, "IssueBranch": true,
}

// NewProbeEmit returns the probeemit pass, restricted to the given
// import-path prefixes (empty scope = every package).
//
// PR 1 threaded obs lifecycle events through every engine; the
// observability layer is only trustworthy while that stays true. The
// pass makes it structural: in any type implementing the engine method
// set, an entry-point method that (transitively, through same-receiver
// helpers) retires an instruction — increments the retired counter —
// must also transitively emit obs.KindCommit, and one that squashes —
// calls a *squash* helper or marks entries squashed — must emit
// obs.KindSquash. A new engine that silently drops out of the
// observability layer fails the lint instead of producing empty traces.
func NewProbeEmit(scope ...string) *Pass {
	p := &Pass{
		Name: "probeemit",
		Doc:  "engine methods that retire or squash instructions must emit the matching obs lifecycle event",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		var out []Finding
		for _, tn := range engineTypeNames(pkg) {
			out = append(out, checkEngine(p.Name, pkg, tn)...)
		}
		return out
	}
	return p
}

// engineTypeNames lists the package-level named types whose declared
// method set covers engineMethods.
func engineTypeNames(pkg *Package) []string {
	var out []string
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		have := map[string]bool{}
		for i := 0; i < named.NumMethods(); i++ {
			have[named.Method(i).Name()] = true
		}
		ok = true
		for _, m := range engineMethods {
			if !have[m] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// methodFacts is what the pass knows about one method body.
type methodFacts struct {
	decl    *ast.FuncDecl
	emits   map[string]bool // obs kind names passed to calls ("KindCommit")
	retires bool            // increments the retired counter
	squash  bool            // marks entries squashed / named *squash*
	calls   map[string]bool // same-receiver methods invoked
}

func checkEngine(passName string, pkg *Package, typeName string) []Finding {
	facts := map[string]*methodFacts{}
	for _, fd := range funcDecls(pkg) {
		if fd.Recv == nil || recvTypeName(fd) != typeName || fd.Body == nil {
			continue
		}
		facts[fd.Name.Name] = methodFactsOf(pkg, typeName, fd)
	}

	// Propagate facts through the same-receiver call graph to a fixed
	// point: a method retires/squashes/emits if it does so directly or
	// through any helper it calls.
	for changed := true; changed; {
		changed = false
		for _, mf := range facts {
			for callee := range mf.calls {
				cf := facts[callee]
				if cf == nil {
					continue
				}
				if cf.retires && !mf.retires {
					mf.retires = true
					changed = true
				}
				if cf.squash && !mf.squash {
					mf.squash = true
					changed = true
				}
				for k := range cf.emits {
					if !mf.emits[k] {
						mf.emits[k] = true
						changed = true
					}
				}
			}
		}
	}

	names := make([]string, 0, len(facts))
	for n := range facts {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Finding
	for _, n := range names {
		mf := facts[n]
		if !engineEntryPoints[n] {
			continue
		}
		if mf.retires && !mf.emits["KindCommit"] {
			out = append(out, Finding{Pass: passName, Pos: pkg.Pos(mf.decl.Name),
				Message: "(*" + typeName + ")." + n + " retires instructions but never emits obs.KindCommit (directly or via helpers); traces and metrics will silently miss them"})
		}
		if mf.squash && !mf.emits["KindSquash"] {
			out = append(out, Finding{Pass: passName, Pos: pkg.Pos(mf.decl.Name),
				Message: "(*" + typeName + ")." + n + " squashes instructions but never emits obs.KindSquash (directly or via helpers); traces and metrics will silently miss them"})
		}
	}
	return out
}

func methodFactsOf(pkg *Package, typeName string, fd *ast.FuncDecl) *methodFacts {
	mf := &methodFacts{
		decl:  fd,
		emits: map[string]bool{},
		calls: map[string]bool{},
	}
	if isSquashName(fd.Name.Name) {
		mf.squash = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Emission: any call carrying an obs kind constant argument
			// (ctx.Observe(obs.KindCommit, ...), Probe.Event with a Kind
			// field, or a local fixture equivalent).
			for _, arg := range n.Args {
				for _, k := range kindNamesIn(arg) {
					mf.emits[k] = true
				}
			}
			// Same-receiver helper calls, resolved through the
			// type-checker so e.helper(), u.commit() etc. all count.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && namedRecvOf(fn) == typeName {
					mf.calls[sel.Sel.Name] = true
					if isSquashName(sel.Sel.Name) {
						mf.squash = true
					}
				}
			}
		case *ast.IncDecStmt:
			if n.Tok == token.INC && isFieldNamed(n.X, "retired") {
				mf.retires = true
			}
		case *ast.AssignStmt:
			mf.retires = mf.retires || retiresByAssign(n)
			mf.squash = mf.squash || squashesByAssign(n)
		}
		return true
	})
	return mf
}

func isSquashName(name string) bool {
	return strings.Contains(strings.ToLower(name), "squash")
}

// retiresByAssign matches writes that advance the retired counter:
// x.retired += n or x.retired = <non-zero>; the Reset idiom
// x.retired = 0 is not a retirement.
func retiresByAssign(s *ast.AssignStmt) bool {
	if len(s.Lhs) == 0 || !isFieldNamed(s.Lhs[0], "retired") {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN:
		return true
	case token.ASSIGN:
		return len(s.Rhs) != 1 || !isZeroLit(s.Rhs[0])
	}
	return false
}

// squashesByAssign matches x.squashed = true (marking an entry
// nullified).
func squashesByAssign(s *ast.AssignStmt) bool {
	if len(s.Lhs) == 0 || len(s.Rhs) == 0 || !isFieldNamed(s.Lhs[0], "squashed") {
		return false
	}
	id, ok := s.Rhs[0].(*ast.Ident)
	return ok && id.Name == "true"
}

func isFieldNamed(e ast.Expr, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "0"
}

// kindNamesIn collects obs event-kind identifiers (KindCommit,
// KindSquash, ...) appearing anywhere in an expression.
func kindNamesIn(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		}
		if strings.HasPrefix(name, "Kind") && len(name) > len("Kind") {
			out = append(out, name)
		}
		return true
	})
	return out
}
