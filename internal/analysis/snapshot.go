package analysis

import (
	"go/ast"
	"go/types"
	"sync"

	"ruu/internal/analysis/ssa"
)

// Snapshot is one loaded, type-checked view of the packages under
// analysis plus the expensive derived structures the passes share.
// Before the snapshot existed every dataflow pass built its own module
// call graph (and the lint driver was invoked once per output format,
// re-parsing and re-type-checking the whole module each time); now a
// single Load feeds a single Snapshot, the call graph is built at most
// once, and every pass — and every output format — runs off the same
// in-memory state. The BenchmarkRuulint* pair in internal/bench tracks
// the wall-clock effect as the ruulint_ns trajectory point.
type Snapshot struct {
	// Packages are the packages under analysis, in load order (sorted
	// by import path).
	Packages []*Package

	byPath map[string]*Package

	graphOnce sync.Once
	graph     *CallGraph

	vfOnce sync.Once
	vf     *ssa.Program
}

// NewSnapshot wraps the packages for shared analysis.
func NewSnapshot(pkgs []*Package) *Snapshot {
	s := &Snapshot{Packages: pkgs, byPath: make(map[string]*Package, len(pkgs))}
	for _, p := range pkgs {
		s.byPath[p.Path] = p
	}
	return s
}

// ByPath returns the loaded package with the given import path, nil
// when absent.
func (s *Snapshot) ByPath(path string) *Package { return s.byPath[path] }

// Graph returns the module call graph, building it on first use and
// sharing it across every pass of this snapshot. Safe for concurrent
// use: passes may run in parallel off one snapshot.
func (s *Snapshot) Graph() *CallGraph {
	s.graphOnce.Do(func() {
		s.graph = BuildCallGraph(s.Packages)
	})
	return s.graph
}

// ValueFlow returns the snapshot's interprocedural SSA view, lazily
// built over the call graph. The two resolver closures are the only
// coupling between the ssa package and the analysis layer: ssa never
// imports analysis.
func (s *Snapshot) ValueFlow() *ssa.Program {
	s.vfOnce.Do(func() {
		g := s.Graph()
		s.vf = ssa.NewProgram(
			func(fn *types.Func) (ssa.Source, bool) {
				decl, pkg := g.Decl(fn)
				if decl == nil {
					return ssa.Source{}, false
				}
				return ssa.Source{Decl: decl, Fset: pkg.Fset, Info: pkg.Info}, true
			},
			func(info *types.Info, call *ast.CallExpr) []*types.Func {
				return g.Callees(info, call)
			},
		)
	})
	return s.vf
}
