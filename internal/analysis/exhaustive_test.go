package analysis

import "testing"

func TestExhaustiveFixtures(t *testing.T) {
	pkg := loadFixture(t, "exhaustive")
	// The declaring package always counts as in scope, so no explicit
	// enum-scope entry is needed for a self-contained fixture.
	checkWants(t, pkg, NewExhaustive(nil))
}
