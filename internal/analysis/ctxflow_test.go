package analysis

import "testing"

func TestCtxFlowFixtures(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	checkWants(t, pkg, NewCtxFlow())
}
