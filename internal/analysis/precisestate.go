package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// archMutators maps receiver type names to the methods that mutate
// architectural state. RegState.SetReg (promoted through exec.State)
// writes the register file; Memory.Write/Poke write memory words.
var archMutators = map[string]map[string]bool{
	"RegState": {"SetReg": true},
	"State":    {"SetReg": true},
	"Memory":   {"Write": true, "Poke": true},
}

// Allowlist maps an import path to the set of function (or method)
// names within it that are audited architectural-state mutators.
type Allowlist map[string][]string

func (a Allowlist) allowed(pkgPath, fn string) bool {
	for _, name := range a[pkgPath] {
		if name == fn {
			return true
		}
	}
	return false
}

// NewPreciseState returns the precisestate pass, restricted to the
// given import-path prefixes (empty scope = every package).
//
// The paper's precise-interrupt argument (§4-5) rests on architectural
// state changing only at the commit boundary: the RUU buffers every
// result and writes the register file and memory strictly from its
// commit path, which is what makes the state at a trap recoverable. The
// imprecise engines mutate at completion — that is their defined
// discipline, and each of their mutator functions is individually
// audited. Either way, the set of functions allowed to call
// RegState.SetReg, Memory.Write, or Memory.Poke is closed: the pass
// turns the discipline into a compile gate, so a new code path that
// scribbles on architectural state from the wrong place is a lint
// failure, not a latent interrupt-recovery bug. To extend the set, add
// the function to the allowlist in docs/ANALYSIS.md order: audit the
// call site, then list it in DefaultPreciseStateAllow (or the engine's
// own entry).
func NewPreciseState(allow Allowlist, scope ...string) *Pass {
	p := &Pass{
		Name: "precisestate",
		Doc:  "architectural register/memory writes only from allowlisted commit/writeback functions",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		var out []Finding
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			fn := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, meth, ok := mutatorCall(pkg.Info, call)
				if !ok || allow.allowed(pkg.Path, fn) {
					return true
				}
				out = append(out, Finding{
					Pass: p.Name,
					Pos:  pkg.Pos(call),
					Message: fmt.Sprintf(
						"architectural state mutation %s.%s outside the audited commit/writeback set for %s (allowed: %s); see docs/ANALYSIS.md before extending the allowlist",
						recv, meth, pkg.Path, allowedNames(allow, pkg.Path)),
				})
				return true
			})
		}
		return out
	}
	return p
}

// mutatorCall reports whether a call invokes an architectural-state
// mutator, resolving the callee through the type-checker so promoted
// methods (st.SetReg via the embedded RegState) and any receiver
// expression shape are recognised.
func mutatorCall(info *types.Info, call *ast.CallExpr) (recvType, method string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	recv := namedRecvOf(fn)
	if recv == "" {
		return "", "", false
	}
	if ms, ok := archMutators[recv]; ok && ms[fn.Name()] {
		return recv, fn.Name(), true
	}
	return "", "", false
}

func allowedNames(allow Allowlist, pkgPath string) string {
	names := append([]string(nil), allow[pkgPath]...)
	if len(names) == 0 {
		return "none"
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
