package analysis

import "testing"

func TestProbeEmitFixtures(t *testing.T) {
	pkg := loadFixture(t, "probeemit")
	checkWants(t, pkg, NewProbeEmit())
}

func TestEngineTypeDetection(t *testing.T) {
	pkg := loadFixture(t, "probeemit")
	got := engineTypeNames(pkg)
	want := []string{"BadEngine", "GoodEngine"}
	if len(got) != len(want) {
		t.Fatalf("engineTypeNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("engineTypeNames = %v, want %v", got, want)
		}
	}
}
