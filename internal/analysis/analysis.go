// Package analysis is the repository's static-analysis framework: a
// small, dependency-free (go/ast + go/parser + go/types only) driver
// plus the repo-specific passes that turn the simulator's correctness
// conventions into machine-checked invariants.
//
// The paper's central claim — the RUU provides out-of-order issue *and*
// precise interrupts from a single structure — survives in this
// reproduction only while two disciplines hold: architectural state is
// mutated exclusively on audited commit/writeback paths, and every run
// is bit-for-bit reproducible. The runtime core.SelfCheck verifies the
// first at simulation time for the configurations that happen to run;
// the passes here verify both at the source level for every engine and
// every configuration, so the disciplines scale with the codebase
// instead of with reviewer attention. See docs/ANALYSIS.md.
//
// Eleven passes ship (see their files for details, and docs/ANALYSIS.md
// for the catalog). Three are syntactic invariant checks over the
// simulation core:
//
//   - simdeterminism: no wall-clock time, global math/rand, goroutines,
//     channel selects, or order-sensitive map iteration in simulation
//     packages.
//   - probeemit: engine code that retires or squashes instructions must
//     emit the matching obs lifecycle event.
//   - precisestate: architectural register-file and memory writes only
//     from allowlisted commit/writeback functions.
//
// Three more run on a lightweight dataflow layer (a module-wide
// RTA-style call graph, see callgraph.go):
//
//   - hotpathalloc: no heap allocation, interface boxing, or fmt calls
//     in code reachable from the machine's per-cycle step.
//   - exhaustive: switches over the repo's uint8 enum types cover every
//     member or carry an explicit default.
//   - paperconst: model constants match internal/isa/paperconst.go; no
//     drifted or restated magic numbers.
//
// Four cover the concurrent service layer (internal/sched,
// internal/server, internal/obs, cmd/ruuserve), where the distributed
// sweep fabric will grow:
//
//   - mutexguard: inferred and annotated guarded-by relations for
//     mutex-bearing structs; no unguarded access, lock copying, or
//     unlock-without-lock.
//   - ctxflow: context.Context threads request paths (first parameter,
//     never a struct field, no context.Background below the handler
//     boundary, no ctx-less blocking selects).
//   - goroutineleak: every go statement has a visible termination path
//     and no send without a guaranteed receiver.
//   - httpcontract: handlers write exactly one status per path, set
//     Content-Type before the body, map client cancellation to 499,
//     and route errors through the shared JSON error writer.
//
// The eleventh, "suppression", lints the linter's own suppression
// markers (see suppress.go).
//
// A finding on a line carrying (or immediately preceded by) a comment
// of the form "//ruulint:ok <pass> <justification>" is suppressed for
// the named pass only; use sparingly and justify the suppression in
// the comment. Bare or misspelled markers suppress nothing and are
// findings of the "suppression" meta-pass (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pass is the name of the pass that produced the finding.
	Pass string
	// Pos is the source position of the offending node.
	Pos token.Position
	// Message describes the violation and the expected fix.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Pass, f.Message)
}

// Pass is one analysis: a name, a one-line description, and a Run
// function producing findings for a single type-checked package.
// A pass that needs whole-module context (e.g. a cross-package call
// graph) may set Init, which Check calls once with the shared snapshot
// before any Run; passes that need the call graph take it from
// Snapshot.Graph so it is built once per load, not once per pass.
type Pass struct {
	Name string
	Doc  string
	// Version participates in the incremental cache key: bump it
	// whenever the pass's logic or message format changes, so stale
	// cached findings from an older pass body can never be replayed.
	// The zero value is a valid version.
	Version int
	// Cache declares how the pass's findings depend on the module (see
	// CacheMode). The zero value, CacheDeps, is correct for any pass
	// whose per-package findings follow from that package's types —
	// which includes everything its dependencies export.
	Cache CacheMode
	Init  func(*Snapshot)
	Run   func(*Package) []Finding
}

// CacheMode tells the incremental lint cache (cache.go) what a pass's
// per-package findings may depend on, which decides when a cached
// entry is still valid.
type CacheMode uint8

const (
	// CacheDeps: findings for a package depend only on that package's
	// files and its in-module transitive dependencies. Editing an
	// unrelated package keeps the entry valid.
	CacheDeps CacheMode = iota
	// CacheModule: findings may depend on any package in the module —
	// the mode for call-graph passes, where interface dispatch can
	// route through an implementer the package never imports. Any
	// module edit invalidates every entry of such a pass.
	CacheModule
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path ("ruu/internal/core").
	Path string
	// Fset positions all files of the enclosing load.
	Fset *token.FileSet
	// Files are the package's non-test source files, sorted by name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object maps.
	Info *types.Info
}

// Pos resolves a node's source position.
func (p *Package) Pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// Module is a loaded module: its path, root directory, and packages.
type Module struct {
	// Path is the module path from go.mod ("ruu").
	Path string
	// Dir is the absolute module root.
	Dir string
	// Packages are the module's packages sorted by import path.
	Packages []*Package
}

// Check runs the passes over the packages, drops suppressed findings,
// and returns the rest sorted by position. It wraps the packages in a
// fresh Snapshot; callers that run several pass sets (or render several
// output formats) over one load should build the Snapshot themselves
// and use CheckSnapshot so the call graph is shared too.
func Check(pkgs []*Package, passes []*Pass) []Finding {
	findings, _ := CheckSnapshot(NewSnapshot(pkgs), passes)
	return findings
}

// PassTiming is one pass's wall-clock cost over a CheckSnapshot run
// (Init plus every Run), for the -timings lint summary.
type PassTiming struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// CheckSnapshot runs the passes over a shared snapshot, dropping
// findings suppressed for their pass, and returns the survivors sorted
// by (file, line, column, pass, message) — a total order, so the JSON
// and SARIF artifacts are byte-stable run-to-run — plus per-pass
// timings in pass order.
func CheckSnapshot(snap *Snapshot, passes []*Pass) ([]Finding, []PassTiming) {
	timings := make([]PassTiming, len(passes))
	for i, pass := range passes {
		timings[i].Name = pass.Name
		if pass.Init != nil {
			start := time.Now()
			pass.Init(snap)
			timings[i].Elapsed += time.Since(start)
		}
	}
	var out []Finding
	for _, pkg := range snap.Packages {
		suppressed := suppressedPasses(pkg)
		for i, pass := range passes {
			start := time.Now()
			for _, f := range pass.Run(pkg) {
				if suppressed[f.Pos.Filename][f.Pos.Line][f.Pass] {
					continue
				}
				out = append(out, f)
				timings[i].Findings++
			}
			timings[i].Elapsed += time.Since(start)
		}
	}
	SortFindings(out)
	return out, timings
}

// SortFindings orders findings by file, line, column, pass, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// inScope reports whether an import path falls under one of the scope
// prefixes; an empty scope matches everything. A prefix matches the
// path itself and everything below it ("ruu/internal/issue" matches
// "ruu/internal/issue/rstu").
func inScope(path string, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// funcDecls returns every function declaration (with a body) in the
// package; used by passes that attribute findings to the containing
// function.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// recvTypeName returns the bare name of a method's receiver type
// ("Engine" for func (e *Engine) ...), or "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver, one type parameter
			t = tt.X
		case *ast.IndexListExpr: // generic receiver, several type parameters
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// namedRecvOf returns the receiver's named type name for a method
// object, dereferencing a pointer receiver, or "" when fn is not a
// method on a named type.
func namedRecvOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
