package analysis

import "testing"

func TestMutexGuardFixtures(t *testing.T) {
	pkg := loadFixture(t, "mutexguard")
	checkWants(t, pkg, NewMutexGuard())
}

func TestMutexGuardScope(t *testing.T) {
	pkg := loadFixture(t, "mutexguard")
	if got := Check([]*Package{pkg}, []*Pass{NewMutexGuard("ruu/internal/server")}); len(got) != 0 {
		t.Errorf("out-of-scope package produced %d findings, want 0", len(got))
	}
}
