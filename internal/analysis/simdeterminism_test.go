package analysis

import "testing"

func TestSimDeterminismFixtures(t *testing.T) {
	pkg := loadFixture(t, "simdeterminism")
	checkWants(t, pkg, NewSimDeterminism())
}

func TestSimDeterminismScope(t *testing.T) {
	pkg := loadFixture(t, "simdeterminism")
	// Out of scope: a violating package outside the sim prefixes is not
	// this pass's business.
	pass := NewSimDeterminism("ruu/internal/core")
	if fs := Check([]*Package{pkg}, []*Pass{pass}); len(fs) != 0 {
		t.Errorf("out-of-scope package produced %d findings: %v", len(fs), fs)
	}
	// In scope via prefix match.
	pass = NewSimDeterminism("simdeterminism")
	if fs := Check([]*Package{pkg}, []*Pass{pass}); len(fs) == 0 {
		t.Errorf("in-scope package produced no findings")
	}
}
