package analysis

import (
	"strings"
	"testing"
)

func TestPolicyContractFixtures(t *testing.T) {
	pkg := loadFixture(t, "policycontract")
	allow := Allowlist{"policycontract": {"commit"}}
	checkWants(t, pkg, NewPolicyContract(allow))
}

func TestPolicyContractEmptyAllowlist(t *testing.T) {
	// With no allowlist, commit's architectural writes are findings too:
	// the audited set is closed by configuration, not by naming.
	pkg := loadFixture(t, "policycontract")
	findings := Check([]*Package{pkg}, []*Pass{NewPolicyContract(nil)})
	inCommit := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "outside commit") {
			inCommit++
		}
	}
	if inCommit != 2 {
		t.Errorf("empty allowlist: got %d commit findings, want 2: %v", inCommit, findings)
	}
}
