package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ruu/internal/analysis/ssa"
)

// The hotpathalloc pass statically checks the simulator's noalloc
// claim: once a run is set up, simulating a cycle must not allocate.
// The ROADMAP's "hardware speed under heavy traffic" goal dies by a
// thousand mallocs otherwise, and the observability layer was designed
// around a zero-allocation nil-probe fast path (docs/OBSERVABILITY.md).
//
// The pass computes the set of functions reachable from the machine's
// per-cycle step — the loop body of (*machine.Machine).Run, followed
// through the module call graph including interface dispatch to every
// engine (see callgraph.go) — and flags, inside hot code:
//
//   - heap-escaping composite literals (&T{}, slice and map literals),
//     new(T) and make(...);
//   - implicit interface boxing at call sites and assignments;
//   - function literals declared inside loops (a fresh closure per
//     iteration);
//   - calls into package fmt and non-constant string concatenation;
//   - append to a slice that is front-popped elsewhere (x = x[1:]),
//     which grows the backing array without bound — use a head index
//     or [:0] reuse instead.
//
// Recognized as exempt, because they are off the per-cycle fast path:
// panic arguments; expressions inside return statements (error and
// trap construction ends or suspends the run); composite literals of
// the cold trap types (exec.Trap, memsys.Fault); blocks guarded by an
// interface non-nil check (optional observers: if w != nil { ... });
// and functions whose first statement is an interface nil-check return
// (the nil-probe fast path, e.g. issue.Observe).
//
// The static verdict is backed dynamically: TestCycleZeroAllocs (root
// package, alloc_test.go) proves with testing.AllocsPerRun that a
// simulated cycle performs zero allocations with a nil probe.

// HotPathConfig configures NewHotPathAlloc.
type HotPathConfig struct {
	// Roots seed hot-path reachability.
	Roots []HotRoot
	// Scope limits findings to these package prefixes (reachable code
	// outside the scope, e.g. observers, is not reported).
	Scope []string
	// ColdTypes are type names whose composite literals are exempt
	// (trap/fault construction ends or interrupts the run).
	ColdTypes []string
	// ColdFuncs are function names hotness neither marks nor
	// traverses (Flush/Reset: trap-boundary recovery runs at
	// interrupt rate, not cycle rate).
	ColdFuncs []string
}

// NewHotPathAlloc returns the hotpathalloc pass.
func NewHotPathAlloc(cfg HotPathConfig) *Pass {
	cold := map[string]bool{}
	for _, t := range cfg.ColdTypes {
		cold[t] = true
	}
	var graph *CallGraph
	var hot map[*types.Func]bool
	var prog *ssa.Program
	loopRoots := map[*types.Func]bool{}
	return &Pass{
		Name:    "hotpathalloc",
		Doc:     "no heap allocation, boxing, or fmt on the per-cycle hot path",
		Version: 2, // v2: SSA escape paths appended to allocation findings
		Cache:   CacheModule,
		Init: func(snap *Snapshot) {
			graph = snap.Graph()
			hot = graph.Hot(cfg.Roots, cfg.ColdFuncs)
			prog = snap.ValueFlow()
			for _, r := range cfg.Roots {
				if r.LoopOnly {
					if fn := graph.Lookup(r.Pkg, r.Recv, r.Func); fn != nil {
						loopRoots[fn] = true
					}
				}
			}
		},
		Run: func(pkg *Package) []Finding {
			if graph == nil || !inScope(pkg.Path, cfg.Scope) {
				return nil
			}
			var out []Finding
			popped := frontPoppedSlices(pkg)
			for _, fd := range funcDecls(pkg) {
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil || fd.Body == nil {
					continue
				}
				fullyHot, loopRoot := hot[fn], loopRoots[fn]
				if !fullyHot && !loopRoot {
					continue
				}
				if nilFastPath(pkg, fd) {
					continue
				}
				sf := prog.FuncOf(ssa.Source{Decl: fd, Fset: pkg.Fset, Info: pkg.Info})
				s := &allocScanner{
					pkg:         pkg,
					cold:        cold,
					popped:      popped,
					requireLoop: !fullyHot,
					add: func(n ast.Node, format string, args ...any) {
						out = append(out, Finding{
							Pass:    "hotpathalloc",
							Pos:     pkg.Pos(n),
							Message: fmt.Sprintf(format, args...) + escapeNote(prog, sf, n),
						})
					},
				}
				s.walk(fd.Body, false, false)
			}
			return out
		},
	}
}

// escapeNote runs the SSA escape analysis on an allocation finding's
// node and renders the value-flow route as a message suffix — the
// *why* behind the finding. Non-allocation sites (fmt calls, boxing,
// string concatenation) and values the analysis proves frame-local get
// no suffix: the finding itself is unchanged either way, the note only
// explains it.
func escapeNote(prog *ssa.Program, f *ssa.Func, n ast.Node) string {
	if prog == nil || f == nil {
		return ""
	}
	var alloc ast.Expr
	switch n := n.(type) {
	case *ast.UnaryExpr: // &T{}
		alloc = n
	case *ast.CompositeLit: // slice/map literal
		alloc = n
	case *ast.CallExpr: // make/new (fmt calls resolve non-escaping contexts anyway)
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); !ok || (id.Name != "make" && id.Name != "new") {
			return ""
		}
		alloc = n
	default:
		return ""
	}
	esc := prog.Escapes(f, alloc)
	if !esc.Escapes || len(esc.Path) == 0 {
		return ""
	}
	return "; escapes: " + strings.Join(esc.Path, " -> ")
}

// allocScanner walks one hot function body reporting allocation sites.
type allocScanner struct {
	pkg  *Package
	cold map[string]bool
	// popped holds slice variables/fields that are front-popped
	// (x = x[1:]) somewhere in the package.
	popped map[types.Object]bool
	// requireLoop restricts reporting to loop/closure context (loop
	// roots: the straight-line setup code of the driver is cold).
	requireLoop bool
	add         func(n ast.Node, format string, args ...any)
}

// walk visits n. inLoop tracks loop/closure context; exempt marks
// subtrees off the fast path (returns, panics, observer guards).
func (s *allocScanner) walk(n ast.Node, inLoop, exempt bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt:
			s.walk(x.Init, inLoop, exempt)
			s.walk(x.Cond, true, exempt)
			s.walk(x.Post, true, exempt)
			s.walk(x.Body, true, exempt)
			return false
		case *ast.RangeStmt:
			s.walk(x.X, inLoop, exempt)
			s.walk(x.Body, true, exempt)
			return false
		case *ast.FuncLit:
			if inLoop && s.report(inLoop, exempt) {
				s.add(x, "function literal declared inside a loop allocates a closure per iteration; hoist it out of the loop")
			}
			s.walk(x.Body, true, exempt)
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				s.walk(r, inLoop, true)
			}
			return false
		case *ast.IfStmt:
			s.walk(x.Init, inLoop, exempt)
			s.walk(x.Cond, inLoop, exempt)
			s.walk(x.Body, inLoop, exempt || ifaceNotNilCond(s.pkg, x.Cond))
			s.walk(x.Else, inLoop, exempt)
			return false
		case *ast.AssignStmt:
			s.checkAssign(x, inLoop, exempt)
			for _, e := range append(x.Lhs[:len(x.Lhs):len(x.Lhs)], x.Rhs...) {
				s.walk(e, inLoop, exempt)
			}
			return false
		case *ast.CallExpr:
			return s.checkCall(x, inLoop, exempt)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					if s.report(inLoop, exempt) && !s.coldLit(cl) {
						s.add(x, "&%s literal escapes to the heap on the per-cycle path", s.litName(cl))
					}
					return false
				}
			}
		case *ast.CompositeLit:
			switch s.litType(x).Underlying().(type) {
			case *types.Slice:
				if s.report(inLoop, exempt) && !s.coldLit(x) {
					s.add(x, "slice literal allocates on the per-cycle path")
				}
			case *types.Map:
				if s.report(inLoop, exempt) {
					s.add(x, "map literal allocates on the per-cycle path")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && s.report(inLoop, exempt) && s.nonConstString(x) {
				s.add(x, "string concatenation allocates on the per-cycle path")
			}
		}
		return true
	})
}

// report decides whether a site in the current context is reportable.
func (s *allocScanner) report(inLoop, exempt bool) bool {
	return !exempt && (inLoop || !s.requireLoop)
}

// checkCall handles one call expression: fmt calls, builtin
// allocators, panic exemption, and interface boxing of arguments.
// It returns whether Inspect should descend into the call.
func (s *allocScanner) checkCall(call *ast.CallExpr, inLoop, exempt bool) bool {
	info := s.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "panic":
				for _, a := range call.Args {
					s.walk(a, inLoop, true)
				}
				return false
			case "make":
				if s.report(inLoop, exempt) {
					s.add(call, "make allocates on the per-cycle path")
				}
			case "new":
				if s.report(inLoop, exempt) && !s.cold[s.typeNameOf(info.Types[call.Args[0]].Type)] {
					s.add(call, "new allocates on the per-cycle path")
				}
			}
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if s.report(inLoop, exempt) {
			s.add(call, "fmt.%s allocates on the per-cycle path", fn.Name())
		}
	}
	s.checkBoxing(call, inLoop, exempt)
	for _, a := range call.Args {
		s.walk(a, inLoop, exempt)
	}
	s.walk(call.Fun, inLoop, exempt)
	return false
}

// checkBoxing flags call arguments implicitly converted to interface
// parameters where the conversion must heap-allocate.
func (s *allocScanner) checkBoxing(call *ast.CallExpr, inLoop, exempt bool) {
	if !s.report(inLoop, exempt) {
		return
	}
	info := s.pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if s.boxes(arg) {
			s.add(arg, "argument boxes %s into %s (heap allocation) on the per-cycle path",
				info.Types[arg].Type, pt)
		}
	}
}

// checkAssign flags interface boxing on assignment and unbounded
// growth of front-popped slices.
func (s *allocScanner) checkAssign(as *ast.AssignStmt, inLoop, exempt bool) {
	if !s.report(inLoop, exempt) {
		return
	}
	info := s.pkg.Info
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			lt, ok := info.Types[lhs]
			if !ok || lt.Type == nil || !types.IsInterface(lt.Type) {
				continue
			}
			if s.boxes(as.Rhs[i]) {
				s.add(as.Rhs[i], "assignment boxes %s into %s (heap allocation) on the per-cycle path",
					info.Types[as.Rhs[i]].Type, lt.Type)
			}
		}
	}
	// x = append(x, ...) where x is front-popped elsewhere.
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return
	}
	obj := sliceRefObj(info, as.Lhs[0])
	if obj != nil && s.popped[obj] && obj == sliceRefObj(info, call.Args[0]) {
		s.add(as, "append to %s, which is front-popped elsewhere (x = x[1:]): the backing array grows without bound; use a head index or [:0] compaction", obj.Name())
	}
}

// nonConstString reports whether be is a string concatenation with at
// least one non-constant operand (constant folding costs nothing).
func (s *allocScanner) nonConstString(be *ast.BinaryExpr) bool {
	tv, ok := s.pkg.Info.Types[be]
	return ok && tv.Type != nil && isString(tv.Type) && tv.Value == nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether converting expr to an interface type must
// allocate: the expression is a typed non-interface value that is not
// pointer-shaped and not a compile-time constant (the compiler places
// constants in static interface data).
func (s *allocScanner) boxes(expr ast.Expr) bool {
	tv, ok := s.pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface data word
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// ifaceNotNilCond reports whether cond is an interface non-nil check
// (w != nil with w interface-typed): its block is an optional-observer
// slow path, off the nil-probe noalloc claim.
func ifaceNotNilCond(pkg *Package, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	return ifaceNilOperands(pkg, be)
}

// ifaceNilOperands reports whether one side of be is nil and the other
// an interface-typed expression.
func ifaceNilOperands(pkg *Package, be *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.IsNil()
	}
	isIface := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.Type != nil && types.IsInterface(tv.Type)
	}
	return (isNil(be.X) && isIface(be.Y)) || (isNil(be.Y) && isIface(be.X))
}

// nilFastPath reports whether fd opens with the nil-probe fast path:
// "if x == nil { return ... }" with x interface-typed. Such functions
// are no-ops on the hot path; their bodies only run with an observer
// attached, which is outside the noalloc claim.
func nilFastPath(pkg *Package, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return ifaceNilOperands(pkg, be)
}

// litType resolves a composite literal's type ("" on failure).
func (s *allocScanner) litType(cl *ast.CompositeLit) types.Type {
	if tv, ok := s.pkg.Info.Types[cl]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func (s *allocScanner) litName(cl *ast.CompositeLit) string {
	if n := s.typeNameOf(s.litType(cl)); n != "" {
		return n
	}
	return "composite"
}

// coldLit reports whether cl constructs a cold type (trap/fault).
func (s *allocScanner) coldLit(cl *ast.CompositeLit) bool {
	return s.cold[s.typeNameOf(s.litType(cl))]
}

// typeNameOf returns the bare named-type name behind t ("" if none),
// dereferencing one pointer level.
func (s *allocScanner) typeNameOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeFunc resolves a call's static callee function object, nil for
// builtins, function values and interface calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return sel.Obj().(*types.Func)
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// frontPoppedSlices collects, package-wide, the slice variables and
// struct fields assigned a front-pop of themselves (x = x[1:], or any
// non-zero low bound). Appending to such a slice never reuses the
// popped prefix, so the backing array grows with traffic.
func frontPoppedSlices(pkg *Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
				return true
			}
			se, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
			if !ok || se.Low == nil || isZeroLit(se.Low) {
				return true
			}
			obj := sliceRefObj(pkg.Info, as.Lhs[0])
			if obj != nil && obj == sliceRefObj(pkg.Info, se.X) {
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// sliceRefObj resolves the variable or struct-field object an
// expression refers to (x, or recv.x), nil for anything else.
func sliceRefObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}
