package analysis

import "testing"

func TestHTTPContractFixtures(t *testing.T) {
	pkg := loadFixture(t, "httpcontract")
	checkWants(t, pkg, NewHTTPContract())
}
