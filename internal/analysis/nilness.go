package analysis

import (
	"fmt"
	"go/ast"
	"go/types"

	"ruu/internal/analysis/ssa"
)

// The nilness pass runs two value-flow checks over the service and
// tooling layers (the simulation core is covered by its own passes):
//
//   - nil dereference: a pointer whose unique reaching definition is
//     provably nil — declared without an initializer, assigned a nil
//     literal, or every phi operand nil — is dereferenced (*p, or a
//     field selection through the pointer); and the branch-sensitive
//     variant, a dereference strictly dominated by the nil edge of an
//     explicit `p == nil` / `p != nil` check on the same definition.
//     A dereference dominated by the non-nil edge of a check is never
//     reported, however the definition looks.
//
//   - discarded error: a call statement whose result (or any member of
//     its result tuple) is an error, evaluated for effect with the
//     result thrown away. fmt's print family is exempt (discarding its
//     error is idiomatic); `defer` and `go` statements are distinct
//     node kinds and are naturally out of scope.
//
// Both checks ride on the SSA layer (internal/analysis/ssa): UseDef
// resolves each use to one definition, CondNilCheck recognizes guard
// conditions, and the dominator tree provides the path sensitivity.
// Functions the SSA builder marks approximate (goto) are skipped —
// soundness degrades to silence, never to a false report.

// NewNilness returns the nilness pass limited to the given package
// scope prefixes.
func NewNilness(scope []string) *Pass {
	var prog *ssa.Program
	return &Pass{
		Name:    "nilness",
		Doc:     "provably-nil dereferences and silently discarded errors",
		Version: 1,
		Cache:   CacheDeps,
		Init: func(snap *Snapshot) {
			prog = snap.ValueFlow()
		},
		Run: func(pkg *Package) []Finding {
			if prog == nil || !inScope(pkg.Path, scope) {
				return nil
			}
			var out []Finding
			for _, fd := range funcDecls(pkg) {
				if fd.Body == nil {
					continue
				}
				out = append(out, discardedErrors(pkg, fd)...)
				f := prog.FuncOf(ssa.Source{Decl: fd, Fset: pkg.Fset, Info: pkg.Info})
				if f == nil || f.Approx {
					continue
				}
				out = append(out, nilDerefs(pkg, f)...)
			}
			return out
		},
	}
}

// nilDerefs reports dereferences of provably-nil definitions within
// one function.
func nilDerefs(pkg *Package, f *ssa.Func) []Finding {
	// Collect the function's nil checks once: block → (def, nil edge,
	// non-nil edge).
	type nilCheck struct {
		def             *ssa.Def
		cond            ast.Expr
		nilEdge, okEdge *ssa.Block
	}
	var checks []nilCheck
	for _, b := range f.Blocks {
		d, nilOnTrue, ok := f.CondNilCheck(b)
		if !ok || len(b.Succs) != 2 {
			continue
		}
		nc := nilCheck{def: d, cond: b.Cond, nilEdge: b.Succs[0], okEdge: b.Succs[1]}
		if !nilOnTrue {
			nc.nilEdge, nc.okEdge = nc.okEdge, nc.nilEdge
		}
		checks = append(checks, nc)
	}

	var out []Finding
	report := func(id *ast.Ident, format string, args ...any) {
		out = append(out, Finding{
			Pass:    "nilness",
			Pos:     pkg.Pos(id),
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, id := range sortedUses(f) {
		d := f.UseDef[id]
		if !derefContext(f, id) {
			continue
		}
		ub := f.BlockOf(id)
		if ub == nil {
			continue
		}
		// A dominating non-nil guard clears the use regardless of how
		// the definition looks (the guarded region is the purpose of
		// the check).
		guarded := false
		onNilPath := false
		var checkPos string
		for _, nc := range checks {
			if nc.def != d {
				continue
			}
			if ssa.Dominates(nc.okEdge, ub) {
				guarded = true
				break
			}
			if ssa.Dominates(nc.nilEdge, ub) {
				onNilPath = true
				checkPos = pkg.Pos(nc.cond).String()
			}
		}
		if guarded {
			continue
		}
		switch {
		case provablyNil(f, d, map[*ssa.Def]bool{}):
			report(id, "%s is provably nil here (defined nil at %s); dereferencing it panics", id.Name, pkg.Fset.Position(d.Pos()))
		case onNilPath:
			report(id, "%s is dereferenced on the nil branch of its own nil check (%s)", id.Name, checkPos)
		}
	}
	return out
}

// sortedUses returns the function's resolved uses in source order, so
// findings come out deterministically.
func sortedUses(f *ssa.Func) []*ast.Ident {
	out := make([]*ast.Ident, 0, len(f.UseDef))
	for id := range f.UseDef {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// provablyNil reports whether every path into d carries a nil value:
// zero-value declarations of nilable types, nil-literal assignments,
// and phis all of whose operands are provably nil. Cycles and unknown
// shapes resolve to false — the pass under-reports rather than guess.
func provablyNil(f *ssa.Func, d *ssa.Def, seen map[*ssa.Def]bool) bool {
	if d == nil || seen[d] {
		return false
	}
	seen[d] = true
	switch d.Kind {
	case ssa.DefZero:
		return nilable(d.Var.Type())
	case ssa.DefAssign:
		if d.Rhs == nil {
			return false
		}
		tv, ok := f.Info.Types[d.Rhs]
		return ok && tv.IsNil()
	case ssa.DefPhi:
		for _, a := range d.Args {
			if a == nil || !provablyNil(f, a, seen) {
				return false
			}
		}
		return len(d.Args) > 0
	default: // DefParam, DefRange: value unknown
		return false
	}
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// derefContext reports whether the identifier use would dereference a
// nil value: an explicit *p, a field selection through a pointer, or
// indexing a slice. Method calls (legal on nil pointer receivers), map
// reads (nil-safe), and plain value uses do not count.
func derefContext(f *ssa.Func, id *ast.Ident) bool {
	par := f.Parent(id)
	switch par := par.(type) {
	case *ast.StarExpr:
		return true
	case *ast.SelectorExpr:
		if par.X != ast.Expr(id) {
			return false
		}
		sel, ok := f.Info.Selections[par]
		if !ok || sel.Kind() != types.FieldVal {
			return false
		}
		_, isPtr := sel.Recv().Underlying().(*types.Pointer)
		return isPtr
	case *ast.IndexExpr:
		if par.X != ast.Expr(id) {
			return false
		}
		v := f.ObjOf(id)
		if v == nil {
			return false
		}
		_, isSlice := v.Type().Underlying().(*types.Slice)
		return isSlice
	}
	return false
}

// discardedErrors flags expression statements that evaluate a call and
// drop an error result on the floor.
func discardedErrors(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !returnsError(pkg.Info, call) {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				return true // discarding fmt print errors is idiomatic
			}
		}
		if neverFails(pkg.Info, call) {
			return true
		}
		out = append(out, Finding{
			Pass:    "nilness",
			Pos:     pkg.Pos(es),
			Message: "call result includes an error that is silently discarded; handle it or assign it to _ to make the drop explicit",
		})
		return true
	})
	return out
}

// neverFails reports whether the call is a method call on a
// standard-library type whose error result is documented to always be
// nil — strings.Builder, bytes.Buffer, and the hash.Hash interface all
// promise "never returns an error", and forcing their callers to thread
// a vacuous error check (or a suppression marker) would train people to
// ignore the pass. The static type of the receiver expression decides
// (hash.Hash inherits Write from io.Writer, so the method object alone
// cannot tell a hash write from a fallible one).
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash":
		return true
	}
	return false
}

// returnsError reports whether the call's result type is, or contains,
// the predeclared error type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
