package analysis

import (
	"sync"
	"testing"
)

// TestPassesShareSnapshotConcurrently drives every default pass in its
// own goroutine over one shared Snapshot of the real tree. The shared
// surfaces — the call graph and SSA program behind sync.Once, the
// implementation cache behind implMu, per-Func lazy block maps — must
// hold up under -race; any unsynchronized lazy state in a pass shows up
// here before it shows up as a corrupted CI run.
func TestPassesShareSnapshotConcurrently(t *testing.T) {
	mod := loadRepo(t)
	snap := NewSnapshot(mod.Packages)
	passes := DefaultPasses(mod.Path)

	var wg sync.WaitGroup
	for _, p := range passes {
		wg.Add(1)
		go func(p *Pass) {
			defer wg.Done()
			if p.Init != nil {
				p.Init(snap)
			}
			for _, pkg := range snap.Packages {
				_ = p.Run(pkg)
			}
		}(p)
	}
	wg.Wait()

	// The sequential driver over the same snapshot must still agree
	// with the tree-clean gate after the concurrent stampede.
	if fs, _ := CheckSnapshot(snap, passes); len(fs) != 0 {
		t.Errorf("sequential re-run after concurrent passes produced %d findings", len(fs))
	}
}
