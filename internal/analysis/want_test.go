package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// wantAt is one expectation parsed from a `// want `regexp“ comment.
type wantAt struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// parseWants collects the fixture's expectation comments.
func parseWants(t *testing.T, pkg *Package) []*wantAt {
	t.Helper()
	var out []*wantAt
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &wantAt{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// checkWants runs a pass over the fixture and matches findings against
// the want comments: every want must be hit on its line, and every
// finding must be wanted.
func checkWants(t *testing.T, pkg *Package, pass *Pass) {
	t.Helper()
	findings := Check([]*Package{pkg}, []*Pass{pass})
	wants := parseWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, but no finding matched", relName(w.file), w.line, w.re)
		}
	}
}

func relName(name string) string {
	if i := strings.LastIndex(name, "testdata"); i >= 0 {
		return name[i:]
	}
	return name
}
