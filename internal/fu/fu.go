// Package fu models the execution resources of the model architecture:
// the pipelined functional units (as a latency table — every unit accepts
// one operation per cycle, like the CRAY-1 scalar units) and the single
// result bus onto which at most one functional unit may deliver a result
// in any clock cycle (§2: "only one function can output data onto the
// result bus in any clock cycle").
package fu

import (
	"fmt"

	"ruu/internal/isa"
)

// Latencies gives, for each unit class, the number of cycles between
// dispatching an operation to the unit and its result appearing on the
// result bus. All units are fully pipelined.
type Latencies [isa.NumUnits]int

// DefaultLatencies returns CRAY-1-like scalar unit latencies. The exact
// CRAY-1 values are not reproduced bit-for-bit; the relative magnitudes
// (logical 1, address add 2, scalar add 3, FP add/multiply 6/7,
// reciprocal 14, memory 5) are, which is what the paper's relative
// speedups depend on. The memory latency (5) and the branch penalties in
// internal/machine were calibrated so that the saturated RSTU/RUU
// speedups land where the paper's Tables 2-6 put them (EXPERIMENTS.md
// records the comparison).
func DefaultLatencies() Latencies {
	var l Latencies
	l[isa.UnitAInt] = isa.LatAInt
	l[isa.UnitAMul] = isa.LatAMul
	l[isa.UnitSLog] = isa.LatSLog
	l[isa.UnitSShift] = isa.LatSShift
	l[isa.UnitSAdd] = isa.LatSAdd
	l[isa.UnitFAdd] = isa.LatFAdd
	l[isa.UnitFMul] = isa.LatFMul
	l[isa.UnitFRecip] = isa.LatFRecip
	l[isa.UnitMem] = isa.LatMem
	l[isa.UnitMove] = isa.LatMove
	return l
}

// Of returns the latency of the unit executing op. It panics for
// UnitNone ops (branches, NOP, HALT), which never enter a unit.
func (l Latencies) Of(op isa.Op) int {
	u := op.Info().Unit
	if u == isa.UnitNone {
		panic(fmt.Sprintf("fu: %s does not execute in a functional unit", op))
	}
	return l[u]
}

// Validate reports an error if any executing unit class has a
// non-positive latency.
func (l Latencies) Validate() error {
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		if l[u] <= 0 {
			return fmt.Errorf("fu: unit %s has non-positive latency %d", u, l[u])
		}
	}
	return nil
}

// Max returns the largest latency.
func (l Latencies) Max() int {
	m := 0
	for _, v := range l {
		if v > m {
			m = v
		}
	}
	return m
}

// busWindow is the size of the result-bus reservation ring. It must
// exceed the largest latency plus slack for forwarded-load rescheduling.
const busWindow = 64

// ResultBus tracks reservations of the single result bus. A functional
// unit reserves the slot for cycle dispatch+latency at dispatch time (the
// reservation discipline of [17], which the paper adopts for the model
// architecture); dispatch stalls when the slot is taken.
type ResultBus struct {
	taken [busWindow]bool
	base  int64 // cycles below base are in the past
}

// NewResultBus returns an empty bus.
func NewResultBus() *ResultBus { return &ResultBus{} }

// Reset clears all reservations and rewinds time to cycle 0.
func (b *ResultBus) Reset() {
	b.taken = [busWindow]bool{}
	b.base = 0
}

// Clear drops all reservations without rewinding time. Engines call it
// when flushing in-flight work (interrupt, misprediction recovery of the
// whole window).
func (b *ResultBus) Clear() {
	b.taken = [busWindow]bool{}
}

// Reserve claims the bus for the given cycle. It reports whether the
// claim succeeded (false if the slot was already taken).
func (b *ResultBus) Reserve(cycle int64) bool {
	i := b.index(cycle)
	if b.taken[i] {
		return false
	}
	b.taken[i] = true
	return true
}

// Busy reports whether the bus is reserved for the given cycle.
func (b *ResultBus) Busy(cycle int64) bool {
	return b.taken[b.index(cycle)]
}

// Advance informs the bus that time has reached the given cycle; slots
// before it are recycled.
func (b *ResultBus) Advance(cycle int64) {
	for b.base < cycle {
		b.taken[b.base%busWindow] = false
		b.base++
	}
}

func (b *ResultBus) index(cycle int64) int64 {
	if cycle < b.base {
		panic(fmt.Sprintf("fu: bus access for past cycle %d (base %d)", cycle, b.base))
	}
	if cycle >= b.base+busWindow {
		panic(fmt.Sprintf("fu: bus access for cycle %d too far beyond base %d", cycle, b.base))
	}
	return cycle % busWindow
}
