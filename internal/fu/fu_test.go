package fu

import (
	"testing"

	"ruu/internal/isa"
)

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The relative magnitudes the model depends on.
	if !(l[isa.UnitSLog] < l[isa.UnitAInt] && l[isa.UnitAInt] < l[isa.UnitSAdd]) {
		t.Error("logical < address add < scalar add violated")
	}
	if !(l[isa.UnitFAdd] < l[isa.UnitFMul] && l[isa.UnitFMul] < l[isa.UnitFRecip]) {
		t.Error("fadd < fmul < frecip violated")
	}
	if l.Max() != l[isa.UnitFRecip] {
		t.Errorf("Max = %d, want the reciprocal latency", l.Max())
	}
	if got := l.Of(isa.FMul); got != l[isa.UnitFMul] {
		t.Errorf("Of(FMul) = %d", got)
	}
}

func TestLatenciesValidate(t *testing.T) {
	l := DefaultLatencies()
	l[isa.UnitMem] = 0
	if err := l.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestOfPanicsForBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Of(Jmp) did not panic")
		}
	}()
	DefaultLatencies().Of(isa.Jmp)
}

func TestResultBusExclusivity(t *testing.T) {
	b := NewResultBus()
	if !b.Reserve(5) {
		t.Fatal("first reservation failed")
	}
	if b.Reserve(5) {
		t.Fatal("double reservation of one cycle succeeded")
	}
	if !b.Busy(5) || b.Busy(6) {
		t.Fatal("Busy wrong")
	}
	if !b.Reserve(6) {
		t.Fatal("adjacent cycle refused")
	}
}

func TestResultBusAdvanceRecycles(t *testing.T) {
	b := NewResultBus()
	for c := int64(0); c < 200; c++ {
		b.Advance(c)
		if !b.Reserve(c + 10) {
			t.Fatalf("cycle %d: reservation failed after recycling", c)
		}
	}
}

func TestResultBusClearKeepsTime(t *testing.T) {
	b := NewResultBus()
	b.Advance(100)
	b.Reserve(105)
	b.Clear()
	if b.Busy(105) {
		t.Fatal("Clear left a reservation")
	}
	if !b.Reserve(105) {
		t.Fatal("reservation after Clear failed")
	}
	// Time must not have rewound: past access still panics.
	defer func() {
		if recover() == nil {
			t.Fatal("past-cycle access did not panic after Clear")
		}
	}()
	b.Busy(50)
}

func TestResultBusPanics(t *testing.T) {
	b := NewResultBus()
	b.Advance(10)
	t.Run("past", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for past cycle")
			}
		}()
		b.Reserve(9)
	})
	t.Run("far-future", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for far-future cycle")
			}
		}()
		b.Reserve(10 + busWindow)
	})
}
