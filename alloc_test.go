package ruu_test

import (
	"fmt"
	"testing"

	"ruu"
)

// allocLoop is a counted loop with a load and a store per iteration, so
// a run exercises the issue engine, the functional units, the result
// bus, and the load registers every cycle.
func allocLoop(n int) string {
	return fmt.Sprintf(`
.equ   n %d
.array x 8

    lai   A7, 0
    lai   A0, =n         ; loop countdown (A0 is the branch register)
    lsi   S1, 1
loop:
    lds   S2, =x(A7)
    adds  S2, S2, S1
    sts   S2, =x(A7)
    addai A0, A0, -1
    janz  loop
    halt
`, n)
}

// TestCycleZeroAllocs proves the claim behind the hotpathalloc pass
// (internal/analysis): with the nil probe, a simulated machine cycle
// allocates nothing. Allocation per cycle is measured as a delta — a
// short and a long run of the same loop share identical setup (machine
// construction, state image, warm-up growth of the engines' reusable
// buffers) and differ only in steady-state cycles executed, so any
// per-cycle allocation would separate their testing.AllocsPerRun
// counts by hundreds.
func TestCycleZeroAllocs(t *testing.T) {
	const shortN, longN = 8, 512
	engines := []ruu.EngineKind{
		ruu.EngineSimple, ruu.EngineTomasulo, ruu.EngineTagUnit,
		ruu.EngineRSPool, ruu.EngineRSTU, ruu.EngineRUU,
	}
	for _, eng := range engines {
		t.Run(string(eng), func(t *testing.T) {
			cfg := ruu.Config{Engine: eng}
			measure := func(n int) (allocs float64, cycles int64) {
				u, err := ruu.Assemble(allocLoop(n))
				if err != nil {
					t.Fatal(err)
				}
				run := func() ruu.Result {
					m, err := ruu.NewMachine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := m.Run(u.Prog, ruu.NewState(u))
					if err != nil || res.Trap != nil {
						t.Fatalf("run failed: %v trap=%v", err, res.Trap)
					}
					return res
				}
				cycles = run().Stats.Cycles
				return testing.AllocsPerRun(5, func() { run() }), cycles
			}
			shortAllocs, shortCycles := measure(shortN)
			longAllocs, longCycles := measure(longN)
			if longCycles < shortCycles+500 {
				t.Fatalf("loop sizing broken: short=%d long=%d cycles", shortCycles, longCycles)
			}
			if delta := longAllocs - shortAllocs; delta > 0.5 {
				perCycle := delta / float64(longCycles-shortCycles)
				t.Errorf("per-cycle allocation: %d extra cycles cost %.1f extra allocs (%.4f/cycle); want 0",
					longCycles-shortCycles, delta, perCycle)
			}
		})
	}
}
