package ruu_test

import (
	"testing"

	"ruu/internal/bench"
)

// The benchmark bodies live in internal/bench so cmd/ruubench can run
// the identical workloads and record the tracked BENCH_*.json
// trajectory; these wrappers keep the familiar `go test -bench .`
// names. *testing.B satisfies bench.B directly — only the iteration
// count is passed explicitly (testing.B.N is a field, not a method).

func runBench(b *testing.B, name string) {
	b.Helper()
	bm := bench.ByName(name)
	if bm == nil {
		b.Fatalf("no benchmark %q in the suite", name)
	}
	bm.Run(b, b.N)
}

// BenchmarkTable1 is the baseline: simple issue over LLL1-LLL14.
func BenchmarkTable1(b *testing.B) { runBench(b, "Table1") }

// BenchmarkTable2 is the RSTU at the paper's knee size (10 entries);
// the full size sweep is cmd/tables -table 2.
func BenchmarkTable2(b *testing.B) { runBench(b, "Table2") }

// BenchmarkTable2Sweep regenerates every row of Table 2 per iteration.
func BenchmarkTable2Sweep(b *testing.B) { runBench(b, "Table2Sweep") }

// BenchmarkTable3 is the two-dispatch-path RSTU.
func BenchmarkTable3(b *testing.B) { runBench(b, "Table3") }

// BenchmarkTable4 is the RUU with bypass logic at the paper's
// recommended size (10-12 entries).
func BenchmarkTable4(b *testing.B) { runBench(b, "Table4") }

// BenchmarkTable5 is the RUU without bypass logic.
func BenchmarkTable5(b *testing.B) { runBench(b, "Table5") }

// BenchmarkTable6 is the RUU with the A-register future file.
func BenchmarkTable6(b *testing.B) { runBench(b, "Table6") }

// BenchmarkTable7 is the §7 extension: speculative RUU.
func BenchmarkTable7(b *testing.B) { runBench(b, "Table7") }

// BenchmarkAblationRSOrganisation exercises the §3 organisation ladder
// (Tomasulo → TU → pool → RSTU → RUU) once per iteration.
func BenchmarkAblationRSOrganisation(b *testing.B) { runBench(b, "AblationRSOrganisation") }

// BenchmarkAblationCounterWidth sweeps the NI/LI counter width.
func BenchmarkAblationCounterWidth(b *testing.B) { runBench(b, "AblationCounterWidth") }

// BenchmarkAblationLoadRegs sweeps the load-register count.
func BenchmarkAblationLoadRegs(b *testing.B) { runBench(b, "AblationLoadRegs") }

// BenchmarkSweepSerial is the baseline: the Table 2-style sweep on the
// calling goroutine (nil pool), exactly what the package-level Sweep
// runs.
func BenchmarkSweepSerial(b *testing.B) { runBench(b, "SweepSerial") }

// BenchmarkSweepParallel is the same sweep fanned out across
// GOMAXPROCS workers with the result cache disabled, so every
// iteration re-simulates (speedup over BenchmarkSweepSerial ≈ core
// count; ~1.0x on a single-core host). Output equality with the serial
// path is golden-tested in service_test.go.
func BenchmarkSweepParallel(b *testing.B) { runBench(b, "SweepParallel") }

// BenchmarkCacheHit measures a fully-cached sweep: after one warm run,
// every (config, kernel) job is answered from the content-addressed
// cache, so an iteration costs key hashing plus lookups — no
// simulation.
func BenchmarkCacheHit(b *testing.B) { runBench(b, "CacheHit") }

// BenchmarkSimulatorRUU measures raw RUU simulation speed on one kernel.
func BenchmarkSimulatorRUU(b *testing.B) { runBench(b, "SimulatorRUU") }

// BenchmarkSimulatorRUUSpeculative measures the speculative RUU.
func BenchmarkSimulatorRUUSpeculative(b *testing.B) { runBench(b, "SimulatorRUUSpeculative") }

// BenchmarkSimulatorRSTU measures RSTU simulation speed.
func BenchmarkSimulatorRSTU(b *testing.B) { runBench(b, "SimulatorRSTU") }

// BenchmarkSimulatorSimple measures baseline-engine simulation speed.
func BenchmarkSimulatorSimple(b *testing.B) { runBench(b, "SimulatorSimple") }

// BenchmarkProbeOverhead compares a kernel run with no probe attached
// (the nil fast path) against the same run feeding the metrics
// collector, so the cost of observability is a visible benchmark delta
// rather than a silent regression.
func BenchmarkProbeOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { runBench(b, "ProbeOverheadOff") })
	b.Run("metrics", func(b *testing.B) { runBench(b, "ProbeOverheadMetrics") })
}

// BenchmarkFunctionalExecutor measures the golden-reference interpreter.
func BenchmarkFunctionalExecutor(b *testing.B) { runBench(b, "FunctionalExecutor") }

// BenchmarkAssembler measures assembly throughput on the largest kernel.
func BenchmarkAssembler(b *testing.B) { runBench(b, "Assembler") }

// BenchmarkPreciseInterruptRoundTrip measures fault-flush-resume cost.
func BenchmarkPreciseInterruptRoundTrip(b *testing.B) { runBench(b, "PreciseInterruptRoundTrip") }

// BenchmarkRuulint measures one full ruulint invocation (module load,
// shared snapshot, every pass) — the ruulint_ns trajectory point. The
// single-invocation `make lint` pays this once where the previous
// two-run Makefile paid it twice.
func BenchmarkRuulint(b *testing.B) { runBench(b, "Ruulint") }

// BenchmarkRuulintCheckOnly isolates the pass run over a cached load:
// the phase the shared snapshot/callgraph cache optimises.
func BenchmarkRuulintCheckOnly(b *testing.B) { runBench(b, "RuulintCheckOnly") }

// BenchmarkRuulintWarm measures a full-hit incremental-cache run on an
// unchanged tree — the ruulint_warm_ns trajectory point, i.e. what
// `make lint` costs when nothing changed.
func BenchmarkRuulintWarm(b *testing.B) { runBench(b, "RuulintWarm") }

// BenchmarkDFAAnalyze measures the full static analysis (abstract
// interpretation, value-aware lint, memory-dependence summary) over
// the kernel suite — the pre-replay work of ruudfa and /v1/analyze.
func BenchmarkDFAAnalyze(b *testing.B) { runBench(b, "DFAAnalyze") }

// BenchmarkBoundTightened measures the dataflow-limit replay with the
// memory-dependence tightening on (the default oracle).
func BenchmarkBoundTightened(b *testing.B) { runBench(b, "BoundTightened") }

// BenchmarkStoreWrite measures persistent-store Put throughput: the
// encode, tmp+rename, fsync, and index-append cost per entry.
func BenchmarkStoreWrite(b *testing.B) { runBench(b, "StoreWrite") }

// BenchmarkStoreRead measures persistent-store Get throughput over a
// warm working set (decode plus checksum verification per hit).
func BenchmarkStoreRead(b *testing.B) { runBench(b, "StoreRead") }

// BenchmarkBatchThroughput posts the canonical six-item /v1/batch
// request through the real HTTP handler with the cache disabled, at
// pool widths 1, 2, and 4, so batch-path scaling is a tracked number.
func BenchmarkBatchThroughput(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { runBench(b, "BatchThroughput1") })
	b.Run("workers=2", func(b *testing.B) { runBench(b, "BatchThroughput2") })
	b.Run("workers=4", func(b *testing.B) { runBench(b, "BatchThroughput4") })
}
