package ruu_test

import (
	"context"
	"sync"
	"testing"

	"ruu"
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// The benchmarks mirror the paper's evaluation one-to-one: BenchmarkTableN
// exercises the machine configuration of Table N over the full kernel
// suite and reports the table's headline numbers (relative speedup and
// issue rate) as benchmark metrics, so `go test -bench .` regenerates the
// measured results alongside simulator throughput. `go run ./cmd/tables`
// prints the full row-by-row tables.

var baselineCyclesOnce sync.Once
var baselineCycles int64

func baseline(b *testing.B) int64 {
	baselineCyclesOnce.Do(func() {
		runs, err := ruu.RunKernels(ruu.Config{Engine: ruu.EngineSimple})
		if err != nil {
			panic(err)
		}
		baselineCycles = ruu.Totals(runs).Cycles
	})
	return baselineCycles
}

// benchConfig runs the whole kernel suite under cfg once per iteration
// and reports simulated cycles/second plus the table's speedup and issue
// rate.
func benchConfig(b *testing.B, cfg ruu.Config) {
	b.Helper()
	base := baseline(b)
	var total ruu.KernelRun
	for i := 0; i < b.N; i++ {
		runs, err := ruu.RunKernels(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = ruu.Totals(runs)
	}
	b.ReportMetric(float64(total.Cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(base)/float64(total.Cycles), "speedup")
	b.ReportMetric(total.IssueRate(), "issue-rate")
}

// BenchmarkTable1 is the baseline: simple issue over LLL1-LLL14.
func BenchmarkTable1(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineSimple})
}

// BenchmarkTable2 is the RSTU at the paper's knee size (10 entries); the
// full size sweep is cmd/tables -table 2.
func BenchmarkTable2(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10})
}

// BenchmarkTable2Sweep regenerates every row of Table 2 per iteration.
func BenchmarkTable2Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ruu.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 is the two-dispatch-path RSTU.
func BenchmarkTable3(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10, Paths: 2})
}

// BenchmarkTable4 is the RUU with bypass logic at the paper's
// recommended size (10-12 entries).
func BenchmarkTable4(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassFull})
}

// BenchmarkTable5 is the RUU without bypass logic.
func BenchmarkTable5(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassNone})
}

// BenchmarkTable6 is the RUU with the A-register future file.
func BenchmarkTable6(b *testing.B) {
	benchConfig(b, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassLimited})
}

// BenchmarkTable7 is the §7 extension: speculative RUU.
func BenchmarkTable7(b *testing.B) {
	cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 20, Bypass: ruu.BypassFull}
	cfg.Machine.Speculate = true
	benchConfig(b, cfg)
}

// BenchmarkAblationRSOrganisation exercises the §3 organisation ladder
// (Tomasulo → TU → pool → RSTU → RUU) once per iteration.
func BenchmarkAblationRSOrganisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ruu.AblationRSOrganisation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCounterWidth sweeps the NI/LI counter width.
func BenchmarkAblationCounterWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ruu.AblationCounterWidth(15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLoadRegs sweeps the load-register count.
func BenchmarkAblationLoadRegs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ruu.AblationLoadRegs(15); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulation service (internal/sched + service.go) ----------------------

// sweepBenchSizes keeps the scheduler benchmarks to a representative
// slice of the Table 2 sweep so one iteration stays sub-second.
var sweepBenchSizes = []int{3, 6, 10, 15}

// BenchmarkSweepSerial is the baseline: the Table 2-style sweep on the
// calling goroutine (nil pool), exactly what the package-level Sweep
// runs.
func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ruu.Sweep(ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel is the same sweep fanned out across
// GOMAXPROCS workers with the result cache disabled, so every iteration
// re-simulates (speedup over BenchmarkSweepSerial ≈ core count; ~1.0x
// on a single-core host). Output equality with the serial path is
// golden-tested in service_test.go.
func BenchmarkSweepParallel(b *testing.B) {
	r := ruu.NewRunner(ruu.RunnerConfig{CacheEntries: -1})
	defer r.Close()
	for i := 0; i < b.N; i++ {
		if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures a fully-cached sweep: after one warm run,
// every (config, kernel) job is answered from the content-addressed
// cache, so an iteration costs key hashing plus lookups — no
// simulation.
func BenchmarkCacheHit(b *testing.B) {
	r := ruu.NewRunner(ruu.RunnerConfig{})
	defer r.Close()
	if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator component throughput ---------------------------------------

// BenchmarkSimulatorRUU measures raw RUU simulation speed on one kernel.
func BenchmarkSimulatorRUU(b *testing.B) {
	benchKernelEngine(b, ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
}

// BenchmarkSimulatorRUUSpeculative measures the speculative RUU.
func BenchmarkSimulatorRUUSpeculative(b *testing.B) {
	cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 12}
	cfg.Machine = machine.Config{Speculate: true}
	benchKernelEngine(b, cfg)
}

// BenchmarkSimulatorRSTU measures RSTU simulation speed.
func BenchmarkSimulatorRSTU(b *testing.B) {
	benchKernelEngine(b, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10})
}

// BenchmarkSimulatorSimple measures baseline-engine simulation speed.
func BenchmarkSimulatorSimple(b *testing.B) {
	benchKernelEngine(b, ruu.Config{Engine: ruu.EngineSimple})
}

func benchKernelEngine(b *testing.B, cfg ruu.Config) {
	b.Helper()
	k := livermore.ByName("LLL1")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := ruu.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkProbeOverhead compares a kernel run with no probe attached
// (the nil fast path) against the same run feeding the metrics
// collector, so the cost of observability is a visible benchmark delta
// rather than a silent regression.
func BenchmarkProbeOverhead(b *testing.B) {
	for _, mode := range []string{"off", "metrics"} {
		b.Run(mode, func(b *testing.B) {
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 12}
			if mode == "metrics" {
				cfg.Machine.Probe = ruu.NewMetricsCollector()
			}
			benchKernelEngine(b, cfg)
		})
	}
}

// BenchmarkFunctionalExecutor measures the golden-reference interpreter.
func BenchmarkFunctionalExecutor(b *testing.B) {
	k := livermore.ByName("LLL3")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	var n int64
	for i := 0; i < b.N; i++ {
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := st.Run(unit.Prog, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		n = res.Executed
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkAssembler measures assembly throughput on the largest kernel.
func BenchmarkAssembler(b *testing.B) {
	src := livermore.ByName("LLL8").Source
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreciseInterruptRoundTrip measures fault-flush-resume cost.
func BenchmarkPreciseInterruptRoundTrip(b *testing.B) {
	k := livermore.ByName("LLL12")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		m.SetFaultInjector(func(pc int, addr int64) *exec.Trap {
			count++
			if count == 500 {
				return &exec.Trap{Kind: exec.TrapPageFault, PC: pc, Addr: addr}
			}
			return nil
		})
		m.SetHandler(func(st *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
			return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			b.Fatal(err)
		}
		if res.Trap != nil || res.Stats.Interrupts != 1 {
			b.Fatalf("unexpected outcome: trap=%v interrupts=%d", res.Trap, res.Stats.Interrupts)
		}
	}
}
