// Package ruu is a cycle-accurate reproduction of the system of
// G. S. Sohi, "Instruction Issue Logic for High-Performance,
// Interruptible, Multiple Functional Unit, Pipelined Computers"
// (UW-Madison CS TR #704, 1987 / ISCA 1987): a CRAY-1-like scalar model
// architecture together with the full family of instruction-issue
// mechanisms the paper studies — simple in-order issue, Tomasulo's
// algorithm, the Tag Unit variants, the RSTU, and the Register Update
// Unit (RUU), which resolves dependencies and provides precise
// interrupts with one structure.
//
// The package exposes the high-level API: build a machine from a Config,
// assemble programs, and run them to obtain statistics and final
// architectural state. The building blocks live under internal/ (see
// DESIGN.md for the map).
//
// Quick start:
//
//	unit, _ := ruu.Assemble(src)
//	m, _ := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
//	res, _ := m.Run(unit.Prog, exec.NewState(unit.NewMemory()))
//	fmt.Println(res.Stats.IssueRate())
package ruu

import (
	"fmt"
	"io"

	"ruu/internal/asm"
	"ruu/internal/core"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/issue/reorder"
	"ruu/internal/issue/rstu"
	"ruu/internal/issue/simple"
	"ruu/internal/issue/tagunit"
	"ruu/internal/issue/tomasulo"
	"ruu/internal/machine"
	"ruu/internal/obs"
)

// EngineKind selects an instruction-issue mechanism.
type EngineKind string

const (
	// EngineSimple is in-order issue with register busy bits (the
	// paper's Table 1 baseline).
	EngineSimple EngineKind = "simple"
	// EngineTomasulo is Tomasulo's algorithm with per-register tags and
	// distributed reservation stations (§3.1).
	EngineTomasulo EngineKind = "tomasulo"
	// EngineTagUnit is a separate Tag Unit with distributed reservation
	// stations (§3.2.1, Figure 2).
	EngineTagUnit EngineKind = "tagunit"
	// EngineRSPool is a Tag Unit with a merged reservation-station pool
	// (§3.2.2).
	EngineRSPool EngineKind = "rspool"
	// EngineRSTU is the merged RS Tag Unit (§3.2.3, Tables 2-3).
	EngineRSTU EngineKind = "rstu"
	// EngineRUU is the Register Update Unit (§5, Tables 4-6).
	EngineRUU EngineKind = "ruu"
	// EngineReorder is a simple reorder buffer after Smith & Pleszkun
	// (the paper's §4 prior art): in-order issue, precise interrupts,
	// aggravated dependencies.
	EngineReorder EngineKind = "reorder"
	// EngineReorderBypass is the reorder buffer with bypass paths.
	EngineReorderBypass EngineKind = "reorder-bypass"
	// EngineReorderFuture is the reorder buffer with a future file.
	EngineReorderFuture EngineKind = "reorder-future"
)

// BypassKind selects the RUU bypass organisation.
type BypassKind string

const (
	// BypassFull reads completed results out of the RUU (Table 4).
	BypassFull BypassKind = "full"
	// BypassNone relies on result-bus and commit-bus monitoring
	// (Table 5).
	BypassNone BypassKind = "none"
	// BypassLimited adds an A-register future file (Table 6).
	BypassLimited BypassKind = "limited"
)

// Re-exported types: the stable public names for the run-facing types of
// the internal packages.
type (
	// Machine drives an issue engine through the shared pipeline frame.
	Machine = machine.Machine
	// MachineConfig parameterises the shared frame (latencies, branch
	// penalties, load registers, speculation).
	MachineConfig = machine.Config
	// Stats aggregates one run's counters.
	Stats = machine.Stats
	// Result summarises a run.
	Result = machine.Result
	// InterruptEvent reports a trap reaching the architectural boundary.
	InterruptEvent = machine.InterruptEvent
	// InterruptAction tells the machine how to continue after a handled
	// interrupt.
	InterruptAction = machine.InterruptAction
	// Handler is an interrupt handler.
	Handler = machine.Handler
	// State is the architectural state (registers, memory, PC).
	State = exec.State
	// Trap is an instruction-generated trap.
	Trap = exec.Trap
	// Unit is an assembled program with data image and symbols.
	Unit = asm.Unit
	// Engine is the interface all issue mechanisms implement.
	Engine = issue.Engine
)

// Re-exported observability types (internal/obs): attach a Probe via
// MachineConfig.Probe to receive the pipeline lifecycle event stream.
type (
	// Probe receives pipeline lifecycle events and per-cycle samples.
	Probe = obs.Probe
	// ProbeEvent is one lifecycle event (fetch … commit/squash).
	ProbeEvent = obs.Event
	// ProbeSample is a per-cycle occupancy snapshot.
	ProbeSample = obs.Sample
	// ProbeKind classifies lifecycle events.
	ProbeKind = obs.Kind
	// MetricsCollector is a probe aggregating histograms and counters.
	MetricsCollector = obs.Metrics
	// MetricsSummary is the JSON-friendly rendering of the metrics.
	MetricsSummary = obs.Summary
	// ChromeTracer is a probe writing Chrome trace-event JSON (Perfetto).
	ChromeTracer = obs.ChromeTracer
	// PipeViewer is a probe rendering a textual pipeline timeline.
	PipeViewer = obs.PipeViewer
	// ProbeRecorder is a probe storing the whole stream (tests, tools).
	ProbeRecorder = obs.Recorder
)

// Re-exported lifecycle-event kinds.
const (
	KindFetch     = obs.KindFetch
	KindDecode    = obs.KindDecode
	KindIssue     = obs.KindIssue
	KindDispatch  = obs.KindDispatch
	KindExecute   = obs.KindExecute
	KindWriteback = obs.KindWriteback
	KindCommit    = obs.KindCommit
	KindSquash    = obs.KindSquash
	KindStall     = obs.KindStall
	KindTrap      = obs.KindTrap
)

// NewMetricsCollector returns a metrics probe wired to this machine's
// stall-reason names.
func NewMetricsCollector() *MetricsCollector {
	return obs.NewMetrics(issue.StallNames())
}

// NewChromeTracer returns a probe writing Chrome trace-event JSON to w;
// open the output in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Call Close after the run to terminate the document.
func NewChromeTracer(w io.Writer) *ChromeTracer { return obs.NewChromeTracer(w) }

// NewPipeViewer returns a probe rendering one timeline line per
// committed (or squashed) instruction, stopping after limit instructions
// (0 = unlimited). Call Close after the run.
func NewPipeViewer(w io.Writer, limit int) *PipeViewer { return obs.NewPipeViewer(w, limit) }

// NewProbeRecorder returns a probe recording the full event stream.
func NewProbeRecorder() *ProbeRecorder { return obs.NewRecorder() }

// CombineProbes fans one event stream out to several probes; nils are
// dropped, and the result is nil when none remain (keeping the
// no-observer fast path).
func CombineProbes(probes ...Probe) Probe { return obs.Combine(probes...) }

// StallNames returns the stall-reason names indexed by stall code (the
// Stall field of a KindStall ProbeEvent).
func StallNames() []string { return issue.StallNames() }

// Disasm returns a disassembler for the unit's program, suitable for
// ChromeTracer.SetDisasm / PipeViewer.SetDisasm.
func Disasm(u *Unit) func(pc int) string {
	return func(pc int) string {
		if u == nil || pc < 0 || pc >= len(u.Prog.Instructions) {
			return ""
		}
		return u.Prog.Instructions[pc].String()
	}
}

// Config selects and sizes an issue mechanism plus the machine frame.
type Config struct {
	// Engine picks the issue mechanism (default EngineRUU).
	Engine EngineKind
	// Entries sizes the mechanism: RSTU/RUU entries, RS-pool size for
	// EngineRSPool, or stations per functional unit for
	// EngineTomasulo/EngineTagUnit. Defaults are per-engine.
	Entries int
	// Paths is the number of RSTU dispatch paths (Table 3; default 1).
	Paths int
	// TagUnitSize caps active tags for EngineTagUnit/EngineRSPool
	// (default 20).
	TagUnitSize int
	// Bypass selects the RUU organisation (default BypassFull).
	Bypass BypassKind
	// CounterBits is the RUU NI/LI counter width (default 3).
	CounterBits int
	// CommitWidth is the RUU commit width (default 1).
	CommitWidth int
	// Machine holds the shared frame parameters; zero values take
	// defaults (machine.DefaultConfig).
	Machine MachineConfig
}

// NewEngine builds the configured issue engine.
func NewEngine(cfg Config) (Engine, error) {
	switch cfg.Engine {
	case EngineSimple:
		return simple.New(), nil
	case EngineTomasulo:
		return tomasulo.New(cfg.Entries), nil
	case EngineTagUnit:
		per := make(map[isa.Unit]int, isa.NumUnits)
		for u := isa.Unit(1); u < isa.NumUnits; u++ {
			per[u] = defaultInt(cfg.Entries, tomasulo.DefaultStations)
		}
		return tagunit.New(tagunit.Config{
			TagUnitSize: defaultInt(cfg.TagUnitSize, 20),
			PerUnit:     per,
		}), nil
	case EngineRSPool:
		return tagunit.New(tagunit.Config{
			TagUnitSize: defaultInt(cfg.TagUnitSize, 20),
			PoolSize:    defaultInt(cfg.Entries, 10),
		}), nil
	case EngineRSTU:
		return rstu.New(cfg.Entries, rstu.WithPaths(defaultInt(cfg.Paths, 1))), nil
	case EngineReorder:
		return reorder.New(reorder.ModePlain, cfg.Entries), nil
	case EngineReorderBypass:
		return reorder.New(reorder.ModeBypass, cfg.Entries), nil
	case EngineReorderFuture:
		return reorder.New(reorder.ModeFuture, cfg.Entries), nil
	case EngineRUU, "":
		return core.New(core.Config{
			Size:        cfg.Entries,
			Bypass:      bypassOf(cfg.Bypass),
			CounterBits: cfg.CounterBits,
			CommitWidth: cfg.CommitWidth,
		}), nil
	default:
		return nil, fmt.Errorf("ruu: unknown engine kind %q", cfg.Engine)
	}
}

func bypassOf(b BypassKind) core.Bypass {
	switch b {
	case BypassNone:
		return core.BypassNone
	case BypassLimited:
		return core.BypassLimited
	default:
		return core.BypassFull
	}
}

func defaultInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// NewMachine builds a machine around the configured engine.
func NewMachine(cfg Config) (*Machine, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return machine.New(eng, cfg.Machine), nil
}

// Assemble assembles model-architecture assembly source.
func Assemble(src string) (*Unit, error) { return asm.Assemble(src) }

// AssembleFile reads and assembles an assembly source file; diagnostics
// carry the file name ("asm: path:line: msg").
func AssembleFile(path string) (*Unit, error) { return asm.AssembleFile(path) }

// NewState returns a fresh architectural state over the unit's data
// image.
func NewState(u *Unit) *State { return exec.NewState(u.NewMemory()) }

// Run assembles src, builds a machine per cfg, runs to completion, and
// returns the result together with the final state.
func Run(cfg Config, src string) (Result, error) {
	u, err := Assemble(src)
	if err != nil {
		return Result{}, err
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(u.Prog, NewState(u))
}

// Reference runs the program on the functional executor (the golden
// reference) and returns the final state and dynamic statistics.
func Reference(u *Unit) (*State, exec.RunResult, error) {
	return exec.Reference(u.Prog, NewState(u), 0)
}

// FloatBits converts a float64 to its S-register/memory representation.
func FloatBits(f float64) int64 { return exec.Bits(f) }

// Float interprets an S-register/memory word as a float64.
func Float(bits int64) float64 { return exec.F64(bits) }
