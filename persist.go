package ruu

import (
	"bytes"
	"encoding/json"

	"ruu/internal/sched"
	"ruu/internal/store"
)

// This file adapts the disk-backed result store (internal/store) to
// the scheduler cache's Backing interface: the in-memory LRU holds
// live Go values, the store holds their durable JSON encoding, and a
// memory miss falls through to disk before anything re-simulates.
//
// The encoding is a typed envelope around the two value shapes the
// pool ever caches — SimOutcome (RunProgram) and KernelRun (the
// sweep/table fan-outs) — so a decoded value round-trips to the exact
// struct a fresh simulation would have produced. encoding/json renders
// float64 with the shortest round-trip form and map keys sorted, which
// is what keeps results served from disk byte-identical to freshly
// computed ones all the way out to the HTTP surface.

// persistEnvelope frames one persisted cache value with its type tag.
type persistEnvelope struct {
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value"`
}

const (
	persistSimOutcome = "SimOutcome"
	persistKernelRun  = "KernelRun"
)

// encodeCached renders a cache value to its durable form; false for
// value shapes the store does not persist.
func encodeCached(v any) ([]byte, bool) {
	var tag string
	switch v.(type) {
	case SimOutcome:
		tag = persistSimOutcome
	case KernelRun:
		tag = persistKernelRun
	default:
		return nil, false
	}
	inner, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	data, err := json.Marshal(persistEnvelope{Type: tag, Value: inner})
	if err != nil {
		return nil, false
	}
	return data, true
}

// decodeCached parses a durable entry back to its live value; false on
// any mismatch (a corrupt or future-format entry is a cache miss, not
// an error).
func decodeCached(data []byte) (any, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env persistEnvelope
	if err := dec.Decode(&env); err != nil {
		return nil, false
	}
	switch env.Type {
	case persistSimOutcome:
		var v SimOutcome
		if err := json.Unmarshal(env.Value, &v); err != nil {
			return nil, false
		}
		return v, true
	case persistKernelRun:
		var v KernelRun
		if err := json.Unmarshal(env.Value, &v); err != nil {
			return nil, false
		}
		return v, true
	}
	return nil, false
}

// persistBacking plugs a *store.Store in under a sched.Cache.
type persistBacking struct {
	s *store.Store
}

// Load fetches and decodes a persisted result; a miss, unreadable
// entry, or unknown shape is simply not found.
func (b persistBacking) Load(k sched.Key) (any, bool) {
	data, ok := b.s.Get(store.Key(k))
	if !ok {
		return nil, false
	}
	return decodeCached(data)
}

// Store writes a result through to disk; unsupported shapes are
// skipped (they stay memory-only).
func (b persistBacking) Store(k sched.Key, v any) {
	data, ok := encodeCached(v)
	if !ok {
		return
	}
	b.s.Put(store.Key(k), data)
}
