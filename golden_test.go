package ruu_test

import (
	"testing"

	"ruu"
	"ruu/internal/livermore"
)

// TestGoldenCycleCounts pins exact cycle counts for a spread of
// configurations and kernels. The timing model is deterministic, so any
// drift here is a real change to the simulated microarchitecture: if a
// change is intentional, update the goldens AND re-run cmd/tables to
// refresh EXPERIMENTS.md; if not, this test just caught a timing
// regression that the architectural-equivalence tests cannot see.
func TestGoldenCycleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep")
	}
	type key struct {
		kernel, cfg string
	}
	configs := map[string]ruu.Config{
		"simple":     {Engine: ruu.EngineSimple},
		"rstu10":     {Engine: ruu.EngineRSTU, Entries: 10},
		"ruu12-full": {Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassFull},
		"ruu12-none": {Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassNone},
		"ruu12-lim":  {Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassLimited},
		"reorder12":  {Engine: ruu.EngineReorder, Entries: 12},
	}
	// The pinned values (regenerate with -run TestGoldenCycleCounts -v
	// after an intentional timing change and copy from the log).
	expect := map[key]int64{
		{"LLL1", "simple"}:      16806,
		{"LLL1", "rstu10"}:      8429,
		{"LLL1", "ruu12-full"}:  10619,
		{"LLL1", "ruu12-none"}:  10424,
		{"LLL1", "ruu12-lim"}:   10619,
		{"LLL1", "reorder12"}:   16806,
		{"LLL5", "simple"}:      26892,
		{"LLL5", "rstu10"}:      16445,
		{"LLL5", "ruu12-full"}:  16447,
		{"LLL5", "ruu12-none"}:  23910,
		{"LLL5", "ruu12-lim"}:   16447,
		{"LLL5", "reorder12"}:   26892,
		{"LLL13", "simple"}:     22001,
		{"LLL13", "rstu10"}:     16265,
		{"LLL13", "ruu12-full"}: 16017,
		{"LLL13", "ruu12-none"}: 17760,
		{"LLL13", "ruu12-lim"}:  16017,
		{"LLL13", "reorder12"}:  22001,
	}
	for name, cfg := range configs {
		for _, kn := range []string{"LLL1", "LLL5", "LLL13"} {
			k := livermore.ByName(kn)
			u, err := k.Unit()
			if err != nil {
				t.Fatal(err)
			}
			m, err := ruu.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := k.NewState()
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(u.Prog, st)
			if err != nil {
				t.Fatalf("%s/%s: %v", kn, name, err)
			}
			t.Logf("{%q, %q}: %d,", kn, name, res.Stats.Cycles)
			if want := expect[key{kn, name}]; want != 0 && res.Stats.Cycles != want {
				t.Errorf("%s/%s: %d cycles, golden %d", kn, name, res.Stats.Cycles, want)
			}
		}
	}
}
