package ruu

import (
	"context"
	"fmt"
	"testing"

	"ruu/internal/livermore"
)

// Golden property of the service layer: the parallel Runner's output is
// byte-identical to the serial harness's — same rows, same floats, same
// error text. The tests render results with %#v so any drift (ordering,
// aggregation, wrapping) shows up as a byte difference.

// sweepTestSizes is a small subset of the paper's sweep, kept short so
// the golden comparison (which runs everything twice) stays cheap.
var sweepTestSizes = []int{3, 6, 10}

func parallelRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner(RunnerConfig{Workers: 4})
	t.Cleanup(r.Close)
	return r
}

func TestParallelSweepByteIdenticalToSerial(t *testing.T) {
	cfg := Config{Engine: EngineRSTU}
	serial, err := Sweep(cfg, sweepTestSizes)
	if err != nil {
		t.Fatalf("serial Sweep: %v", err)
	}
	par, err := parallelRunner(t).Sweep(context.Background(), cfg, sweepTestSizes)
	if err != nil {
		t.Fatalf("parallel Sweep: %v", err)
	}
	got, want := fmt.Sprintf("%#v", par), fmt.Sprintf("%#v", serial)
	if got != want {
		t.Errorf("parallel sweep diverges from serial:\n got %s\nwant %s", got, want)
	}
}

func TestParallelRunKernelsByteIdenticalToSerial(t *testing.T) {
	cfg := Config{Engine: EngineRUU, Entries: 8, Bypass: BypassFull}
	serial, err := RunKernels(cfg)
	if err != nil {
		t.Fatalf("serial RunKernels: %v", err)
	}
	par, err := parallelRunner(t).RunKernels(context.Background(), cfg)
	if err != nil {
		t.Fatalf("parallel RunKernels: %v", err)
	}
	got, want := fmt.Sprintf("%#v", par), fmt.Sprintf("%#v", serial)
	if got != want {
		t.Errorf("parallel kernel runs diverge from serial:\n got %s\nwant %s", got, want)
	}
}

func TestParallelSweepErrorMatchesSerial(t *testing.T) {
	cfg := Config{Engine: "no-such-engine"}
	_, serialErr := Sweep(cfg, []int{3})
	if serialErr == nil {
		t.Fatal("serial Sweep of a bogus engine succeeded")
	}
	_, parErr := parallelRunner(t).Sweep(context.Background(), cfg, []int{3})
	if parErr == nil {
		t.Fatal("parallel Sweep of a bogus engine succeeded")
	}
	if parErr.Error() != serialErr.Error() {
		t.Errorf("parallel error %q != serial error %q", parErr, serialErr)
	}
}

func TestRunnerCacheHitOnResubmission(t *testing.T) {
	r := parallelRunner(t)
	cfg := Config{Engine: EngineRSTU, Entries: 6}
	first, err := r.RunKernels(context.Background(), cfg)
	if err != nil {
		t.Fatalf("first RunKernels: %v", err)
	}
	m := r.Pool().Metrics()
	if m.Cache.Hits != 0 {
		t.Fatalf("cold cache reported %d hits", m.Cache.Hits)
	}
	second, err := r.RunKernels(context.Background(), cfg)
	if err != nil {
		t.Fatalf("second RunKernels: %v", err)
	}
	if got, want := fmt.Sprintf("%#v", second), fmt.Sprintf("%#v", first); got != want {
		t.Errorf("cached result diverges:\n got %s\nwant %s", got, want)
	}
	m = r.Pool().Metrics()
	if m.Cache.Hits == 0 {
		t.Error("resubmission produced no cache hits")
	}
	if m.Submitted != int64(len(first)) {
		t.Errorf("Submitted = %d after a fully-cached rerun, want %d", m.Submitted, len(first))
	}
}

func TestRunnerObservedConfigRunsSerially(t *testing.T) {
	r := parallelRunner(t)
	rec := NewProbeRecorder()
	cfg := Config{Engine: EngineSimple}
	cfg.Machine.Probe = rec
	if p := r.poolFor(cfg); p != nil {
		t.Fatal("observed config was given the worker pool")
	}
	if k := kernelKey(cfg, livermore.Kernels()[0]); !k.IsZero() {
		t.Fatal("observed config produced a cacheable key")
	}
	runs, err := r.RunKernels(context.Background(), cfg)
	if err != nil {
		t.Fatalf("observed RunKernels: %v", err)
	}
	if len(runs) == 0 || len(rec.Events) == 0 {
		t.Fatalf("observed run produced %d runs, %d events", len(runs), len(rec.Events))
	}
}

func TestRunProgramVerifiedAndCached(t *testing.T) {
	u, err := Assemble(serviceTestSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	r := parallelRunner(t)
	cfg := Config{Engine: EngineRUU, Entries: 12, Bypass: BypassFull}
	out, err := r.RunProgram(context.Background(), cfg, u, true)
	if err != nil {
		t.Fatalf("RunProgram: %v", err)
	}
	if !out.Verified || out.Trap != "" || out.Instructions == 0 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	// Serial path must agree byte for byte.
	serial, err := serialRunner.RunProgram(context.Background(), cfg, u, true)
	if err != nil {
		t.Fatalf("serial RunProgram: %v", err)
	}
	if fmt.Sprintf("%#v", out) != fmt.Sprintf("%#v", serial) {
		t.Errorf("parallel outcome %#v != serial %#v", out, serial)
	}
	again, err := r.RunProgram(context.Background(), cfg, u, true)
	if err != nil {
		t.Fatalf("cached RunProgram: %v", err)
	}
	if fmt.Sprintf("%#v", again) != fmt.Sprintf("%#v", out) {
		t.Errorf("cached outcome diverges: %#v != %#v", again, out)
	}
	if hits := r.Pool().Metrics().Cache.Hits; hits == 0 {
		t.Error("identical resubmission produced no cache hit")
	}
	// Unverified runs must not share the verified run's cache slot.
	unv, err := r.RunProgram(context.Background(), cfg, u, false)
	if err != nil {
		t.Fatalf("unverified RunProgram: %v", err)
	}
	if unv.Verified {
		t.Error("unverified run answered from the verified cache slot")
	}
}

func TestJobKeySeparatesConfigsProgramsAndState(t *testing.T) {
	u, err := Assemble(serviceTestSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	base := Config{Engine: EngineRUU, Entries: 12}
	k0 := jobKey(base, u, NewState(u))
	if k0.IsZero() {
		t.Fatal("cacheable job hashed to NoKey")
	}
	if k := jobKey(base, u, NewState(u)); k != k0 {
		t.Error("identical inputs produced different keys")
	}
	other := base
	other.Entries = 16
	if k := jobKey(other, u, NewState(u)); k == k0 {
		t.Error("different Entries produced the same key")
	}
	mcfg := base
	mcfg.Machine.FwdLatency = 5
	if k := jobKey(mcfg, u, NewState(u)); k == k0 {
		t.Error("different machine timing produced the same key")
	}
	st := NewState(u)
	st.Mem.Poke(0, 12345)
	if k := jobKey(base, u, st); k == k0 {
		t.Error("different initial memory produced the same key")
	}
}

const serviceTestSrc = `
.equ  n 32
.array x 32
.word result 0

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n
    lsi   S1, 0
loop:
    lds   S2, =x(A1)
    fadd  S1, S1, S2
    addai A0, A0, -1
    addai A1, A1, 1
    janz  loop
    sts   S1, =result(A7)
    halt
`
