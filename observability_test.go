package ruu_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"ruu"
	"ruu/internal/issue"
	"ruu/internal/livermore"
	"ruu/internal/obs"
)

// runKernelWithProbe runs the named kernel under cfg with the probe
// attached and returns the run result.
func runKernelWithProbe(t *testing.T, cfg ruu.Config, kernel string, p ruu.Probe) ruu.Result {
	t.Helper()
	k := livermore.ByName(kernel)
	if k == nil {
		t.Fatalf("unknown kernel %q", kernel)
	}
	unit, err := k.Unit()
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.NewState()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Machine.Probe = p
	m, err := ruu.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("unexpected trap: %v", res.Trap)
	}
	return res
}

// TestProbeEventOrdering checks the fundamental contract of the event
// stream: every committed instruction's lifecycle cycles are monotone —
// fetch ≤ decode ≤ (issue ≤ dispatch ≤ execute ≤ writeback ≤) commit —
// on both a precise out-of-order engine (RUU) and an in-order reorder
// buffer.
func TestProbeEventOrdering(t *testing.T) {
	cfgs := map[string]ruu.Config{
		"ruu":     {Engine: ruu.EngineRUU, Entries: 12},
		"reorder": {Engine: ruu.EngineReorder, Entries: 12},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			rec := ruu.NewProbeRecorder()
			res := runKernelWithProbe(t, cfg, "LLL1", rec)

			committed := rec.Committed()
			if int64(len(committed)) != res.Stats.Instructions {
				t.Fatalf("commit events %d != architectural instructions %d",
					len(committed), res.Stats.Instructions)
			}
			chain := []ruu.ProbeKind{
				ruu.KindFetch, ruu.KindDecode, ruu.KindIssue, ruu.KindDispatch,
				ruu.KindExecute, ruu.KindWriteback, ruu.KindCommit,
			}
			for _, id := range committed {
				if id == obs.NoID {
					t.Fatal("commit event with no instruction id")
				}
				last := int64(-1)
				lastKind := ruu.ProbeKind(0)
				seen := 0
				for _, k := range chain {
					c, ok := rec.First(id, k)
					if !ok {
						// Machine-retired instructions (branches, NOP/HALT on
						// some engines) have no issue..writeback stages; the
						// stages an instruction does pass through must still
						// be in order.
						continue
					}
					seen++
					if c < last {
						t.Fatalf("I%d: %v@%d precedes %v@%d", id, k, c, lastKind, last)
					}
					last, lastKind = c, k
				}
				if _, ok := rec.First(id, ruu.KindFetch); !ok {
					t.Errorf("I%d committed without a fetch event", id)
				}
				if seen < 3 { // at minimum fetch, decode, commit
					t.Errorf("I%d committed with only %d lifecycle events", id, seen)
				}
			}
			// An instruction that issued must show the full chain on these
			// engines (degenerate same-cycle stages included).
			full := 0
			for _, id := range committed {
				if _, ok := rec.First(id, ruu.KindIssue); !ok {
					continue
				}
				for _, k := range chain[2:] {
					if _, ok := rec.First(id, k); !ok {
						t.Fatalf("I%d issued but lacks a %v event", id, k)
					}
				}
				full++
			}
			if full == 0 {
				t.Fatal("no instruction went through the full issue chain")
			}
		})
	}
}

// TestSquashEvents drives a mispredicted branch: the predictor starts
// weakly-taken, the branch's condition is produced by a long-latency
// reciprocal, and the branch falls through — so the predicted (taken)
// path issues conditionally and is squashed when the branch resolves.
func TestSquashEvents(t *testing.T) {
	src := `
start:
	lsi S1, 3
	frecip S0, S1
	jsz wrong
	lsi S2, 1
	lsi S3, 2
	halt
wrong:
	lsi S4, 7
	lsi S5, 8
	lsi S6, 9
	halt
`
	unit, err := ruu.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := ruu.NewProbeRecorder()
	cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 12}
	cfg.Machine.Speculate = true
	cfg.Machine.Probe = rec
	m, err := ruu.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(unit.Prog, ruu.NewState(unit))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("unexpected trap: %v", res.Trap)
	}
	if res.Stats.Mispredicts == 0 {
		t.Fatal("test program did not mispredict (predictor changed?)")
	}
	squashed := rec.Squashed()
	if len(squashed) == 0 {
		t.Fatal("misprediction produced no squash events")
	}
	// Squashed instructions are wrong-path: they must come from the
	// not-executed arm and never also commit.
	committedSet := map[int64]bool{}
	for _, id := range rec.Committed() {
		committedSet[id] = true
	}
	for _, id := range squashed {
		if committedSet[id] {
			t.Errorf("I%d both squashed and committed", id)
		}
	}
	// The architectural run never reaches the wrong arm, so S4 stays 0.
	if got := rec.Count(ruu.KindSquash); got != len(squashed) {
		t.Errorf("Count(squash) = %d, want %d", got, len(squashed))
	}
}

// TestChromeTraceEndToEnd is the PR's acceptance criterion: a kernel run
// with -trace-out semantics yields valid Chrome trace-event JSON with one
// complete stage timeline per committed instruction.
func TestChromeTraceEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	tracer := ruu.NewChromeTracer(&buf)
	rec := ruu.NewProbeRecorder()
	res := runKernelWithProbe(t, ruu.Config{Engine: ruu.EngineRUU, Entries: 12},
		"LLL1", ruu.CombineProbes(tracer, rec))
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[int64]bool{}
	instants := map[int64]bool{}
	slices := map[int64]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			tracks[e.Tid] = true
		case "X":
			slices[e.Tid]++
		case "i":
			instants[e.Tid] = true
		}
	}
	if int64(len(tracks)) != res.Stats.Instructions {
		t.Fatalf("%d instruction tracks for %d committed instructions",
			len(tracks), res.Stats.Instructions)
	}
	for _, id := range rec.Committed() {
		if !tracks[id] {
			t.Fatalf("committed I%d has no track", id)
		}
		if !instants[id] {
			t.Fatalf("committed I%d has no terminal commit event", id)
		}
		if slices[id] < 2 { // at least fetch + decode
			t.Fatalf("committed I%d has only %d stage slices", id, slices[id])
		}
	}
}

// TestNilProbeZeroAlloc proves the no-observer fast path allocates
// nothing: the emission helpers must be free when no probe is attached.
func TestNilProbeZeroAlloc(t *testing.T) {
	ctx := &issue.Context{}
	allocs := testing.AllocsPerRun(1000, func() {
		ctx.Observe(obs.KindIssue, 42, 7, 3)
		ctx.ObserveStall(42, issue.StallOperand, 7, 3)
		ctx.ObserveSample(obs.Sample{Cycle: 42, InFlight: 5})
	})
	if allocs != 0 {
		t.Fatalf("nil-probe emission allocated %v times per run, want 0", allocs)
	}
}

// TestMetricsMatchesStats cross-checks the metrics probe against the
// machine's own counters: commits equal architectural instructions,
// stall cycles match Stats.Stalls, and occupancy sampling covers nearly
// every cycle.
func TestMetricsMatchesStats(t *testing.T) {
	mc := ruu.NewMetricsCollector()
	res := runKernelWithProbe(t, ruu.Config{Engine: ruu.EngineRUU, Entries: 12}, "LLL5", mc)

	if got := mc.EventCount(ruu.KindCommit); got != res.Stats.Instructions {
		t.Errorf("metrics commits %d != instructions %d", got, res.Stats.Instructions)
	}
	wantStalls := res.Stats.StallsByName()
	gotStalls := mc.Stalls()
	if fmt.Sprint(wantStalls) != fmt.Sprint(gotStalls) {
		t.Errorf("stall breakdown differs:\nstats:   %v\nmetrics: %v", wantStalls, gotStalls)
	}
	if mc.Cycles() == 0 || mc.Cycles() > res.Stats.Cycles {
		t.Errorf("sampled cycles %d outside (0, %d]", mc.Cycles(), res.Stats.Cycles)
	}
	if int(mc.Occupancy.Max()) > res.Stats.MaxInFlight {
		t.Errorf("sampled occupancy max %d exceeds stats max %d",
			mc.Occupancy.Max(), res.Stats.MaxInFlight)
	}
	if mc.Residency.N() == 0 {
		t.Error("no residency observations")
	}
}
