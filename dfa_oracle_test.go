package ruu

import (
	"fmt"
	"testing"

	"ruu/internal/dfa"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/progsynth"
)

// oracleEngines is the configuration matrix the dataflow-limit oracle is
// checked against: every issue mechanism, plus an effectively unbounded
// RUU with and without speculation.
func oracleEngines() []struct {
	name string
	cfg  Config
} {
	spec := Config{Engine: EngineRUU, Entries: 2048, Bypass: BypassFull}
	spec.Machine.Speculate = true
	return []struct {
		name string
		cfg  Config
	}{
		{"simple", Config{Engine: EngineSimple}},
		{"tomasulo", Config{Engine: EngineTomasulo, Entries: 2}},
		{"tagunit", Config{Engine: EngineTagUnit, Entries: 2, TagUnitSize: 20}},
		{"rspool", Config{Engine: EngineRSPool, Entries: 10, TagUnitSize: 20}},
		{"rstu", Config{Engine: EngineRSTU, Entries: 10}},
		{"ruu", Config{Engine: EngineRUU, Entries: 10, Bypass: BypassFull}},
		{"reorder", Config{Engine: EngineReorder, Entries: 10}},
		{"reorder-bypass", Config{Engine: EngineReorderBypass, Entries: 10}},
		{"reorder-future", Config{Engine: EngineReorderFuture, Entries: 10}},
		{"ruu-inf", Config{Engine: EngineRUU, Entries: 2048, Bypass: BypassFull}},
		{"ruu-inf-spec", spec},
	}
}

// runKernelStats is runKernel, but keeps the full machine statistics.
func runKernelStats(t *testing.T, cfg Config, k *livermore.Kernel) Result {
	t.Helper()
	u, err := k.Unit()
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	st, err := k.NewState()
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	if res.Trap != nil {
		t.Fatalf("%s: unexpected trap %v", k.Name, res.Trap)
	}
	if err := k.Verify(st); err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return res
}

// TestDataflowOracleLivermore checks the dataflow-limit oracle against
// every engine on every Livermore kernel:
//
//   - no engine finishes in fewer cycles than the dataflow limit (the
//     bound is sound),
//   - every engine executes exactly the dynamic instruction stream the
//     bound was computed over,
//   - simple issue never beats the unbounded RUU,
//   - the speculative unbounded RUU comes within 10% of the limit on at
//     least one kernel (the bound is not vacuously loose), and it does
//     so while recovering from real mispredictions (the squash path
//     cannot dodge the bound).
func TestDataflowOracleLivermore(t *testing.T) {
	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	engines := oracleEngines()

	minRatio := 0.0
	minKernel := ""
	var specMispredicts int64
	for _, k := range livermore.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			u, err := k.Unit()
			if err != nil {
				t.Fatal(err)
			}
			st, err := k.NewState()
			if err != nil {
				t.Fatal(err)
			}
			b, err := dfa.ComputeBound(u.Prog, st, bcfg)
			if err != nil {
				t.Fatal(err)
			}
			if b.Trap != nil {
				t.Fatalf("bound replay trapped: %v", b.Trap)
			}

			cycles := map[string]int64{}
			for _, e := range engines {
				res := runKernelStats(t, e.cfg, k)
				cycles[e.name] = res.Stats.Cycles
				if res.Stats.Cycles < b.Cycles {
					t.Errorf("%s: %d cycles beats the dataflow limit %d (bound unsound)",
						e.name, res.Stats.Cycles, b.Cycles)
				}
				if res.Stats.Instructions != b.DynInstrs {
					t.Errorf("%s: executed %d instructions, bound replay saw %d",
						e.name, res.Stats.Instructions, b.DynInstrs)
				}
				if e.name == "ruu-inf-spec" {
					specMispredicts += res.Stats.Mispredicts
				}
			}
			if cycles["simple"] < cycles["ruu-inf"] {
				t.Errorf("simple issue (%d cycles) beats the unbounded RUU (%d cycles)",
					cycles["simple"], cycles["ruu-inf"])
			}
			ratio := float64(cycles["ruu-inf-spec"]) / float64(b.Cycles)
			if minKernel == "" || ratio < minRatio {
				minRatio, minKernel = ratio, k.Name
			}
		})
	}

	// Measured: LLL3 and LLL12 run within 0.2% of the limit; anything
	// above 1.10 means the bound (or an engine) regressed badly.
	if minKernel == "" {
		t.Fatal("no kernels ran")
	}
	t.Logf("tightest kernel: %s at %.3fx the dataflow limit", minKernel, minRatio)
	if minRatio > 1.10 {
		t.Errorf("speculative unbounded RUU never comes within 10%% of the dataflow limit (best %s at %.3fx)",
			minKernel, minRatio)
	}
	if specMispredicts == 0 {
		t.Error("speculative runs saw zero mispredictions: the squash-vs-bound interaction was not exercised")
	}
}

// TestDataflowOracleSynthesized checks bound soundness over a seeded
// progsynth corpus: programs with nested loops and data-dependent
// conditional branches, where the dynamic stream differs per seed.
func TestDataflowOracleSynthesized(t *testing.T) {
	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	opts := progsynth.Options{Nested: true, CondBranches: true}
	spec := Config{Engine: EngineRUU, Entries: 2048, Bypass: BypassFull}
	spec.Machine.Speculate = true
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"simple", Config{Engine: EngineSimple}},
		{"rstu", Config{Engine: EngineRSTU, Entries: 10}},
		{"reorder-future", Config{Engine: EngineReorderFuture, Entries: 10}},
		{"ruu-inf-spec", spec},
	}
	for seed := int64(1); seed <= 20; seed++ {
		prog := progsynth.Generate(seed, opts)
		b, err := dfa.ComputeBound(prog, progsynth.NewState(seed, opts), bcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b.Trap != nil {
			t.Fatalf("seed %d: bound replay trapped: %v", seed, b.Trap)
		}
		for _, e := range cfgs {
			m, err := NewMachine(e.cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			st := progsynth.NewState(seed, opts)
			res, err := m.Run(prog, st)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, e.name, err)
			}
			if res.Trap != nil {
				t.Fatalf("seed %d %s: unexpected trap %v", seed, e.name, res.Trap)
			}
			if res.Stats.Cycles < b.Cycles {
				t.Errorf("seed %d: %s finishes in %d cycles, below the dataflow limit %d",
					seed, e.name, res.Stats.Cycles, b.Cycles)
			}
			if res.Stats.Instructions != b.DynInstrs {
				t.Errorf("seed %d: %s executed %d instructions, bound replay saw %d",
					seed, e.name, res.Stats.Instructions, b.DynInstrs)
			}
		}
	}
}

// TestDataflowCensusMatchesMachineBranchCounts cross-checks the census
// replay against the cycle-accurate machine's own branch accounting.
func TestDataflowCensusMatchesMachineBranchCounts(t *testing.T) {
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		c, err := dfa.ComputeCensus(u.Prog, st, 0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if c.Trap != nil {
			t.Fatalf("%s: census replay trapped: %v", k.Name, c.Trap)
		}
		res := runKernelStats(t, Config{Engine: EngineSimple}, k)
		if c.DynInstrs != res.Stats.Instructions {
			t.Errorf("%s: census counted %d instructions, machine %d", k.Name, c.DynInstrs, res.Stats.Instructions)
		}
		if c.Branches != res.Stats.Branches || c.Taken != res.Stats.Taken {
			t.Errorf("%s: census branches %d/%d taken, machine %d/%d",
				k.Name, c.Branches, c.Taken, res.Stats.Branches, res.Stats.Taken)
		}
	}
}

// TestBoundTightened pins the effect of the memory-dependence edges:
// the tightened bound (the default) is never below the register-only
// bound, and is strictly greater on at least 3 kernels — the
// recurrence-carrying ones, where a loop-carried store→load chain is
// the real dataflow limit.
func TestBoundTightened(t *testing.T) {
	mc := machine.DefaultConfig()
	tight := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	loose := tight
	loose.NoMemDep = true

	strictly := 0
	var tightened []string
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		bt, err := dfa.ComputeBound(u.Prog, st, tight)
		if err != nil {
			t.Fatal(err)
		}
		st, err = k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		bl, err := dfa.ComputeBound(u.Prog, st, loose)
		if err != nil {
			t.Fatal(err)
		}
		if bl.MemDepEdges != 0 {
			t.Errorf("%s: NoMemDep bound still counted %d memdep edges", k.Name, bl.MemDepEdges)
		}
		if bt.Cycles < bl.Cycles {
			t.Errorf("%s: tightened bound %d below register-only bound %d", k.Name, bt.Cycles, bl.Cycles)
		}
		if bt.Cycles > bl.Cycles {
			strictly++
			tightened = append(tightened, fmt.Sprintf("%s %d->%d (%d edges)", k.Name, bl.Cycles, bt.Cycles, bt.MemDepEdges))
		}
	}
	t.Logf("strictly tightened on %d kernels: %v", strictly, tightened)
	if strictly < 3 {
		t.Errorf("memory-dependence edges tightened only %d kernels, want >= 3", strictly)
	}
}
