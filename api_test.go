package ruu_test

import (
	"strings"
	"testing"

	"ruu"
	"ruu/internal/machine"
)

// TestNewEngineKinds: every engine kind constructs and reports a stable
// name; unknown kinds error.
func TestNewEngineKinds(t *testing.T) {
	want := map[ruu.EngineKind]string{
		ruu.EngineSimple:        "simple",
		ruu.EngineTomasulo:      "tomasulo",
		ruu.EngineTagUnit:       "tu-dist",
		ruu.EngineRSPool:        "tu-pool",
		ruu.EngineRSTU:          "rstu",
		ruu.EngineRUU:           "ruu-full",
		ruu.EngineReorder:       "reorder-plain",
		ruu.EngineReorderBypass: "reorder-bypass",
		ruu.EngineReorderFuture: "reorder-future",
		"":                      "ruu-full", // default
	}
	for kind, name := range want {
		eng, err := ruu.NewEngine(ruu.Config{Engine: kind})
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if eng.Name() != name {
			t.Errorf("%q: Name() = %q, want %q", kind, eng.Name(), name)
		}
	}
	if _, err := ruu.NewEngine(ruu.Config{Engine: "bogus"}); err == nil {
		t.Error("unknown engine kind accepted")
	}
	if _, err := ruu.NewMachine(ruu.Config{Engine: "bogus"}); err == nil {
		t.Error("NewMachine accepted an unknown engine kind")
	}
}

// TestRunHelper: the one-call Run covers assemble + machine + run.
func TestRunHelper(t *testing.T) {
	res, err := ruu.Run(ruu.Config{Engine: ruu.EngineRUU, Entries: 8}, `
    lai  A1, 20
    lai  A2, 22
    adda A3, A1, A2
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	if res.Final.A[3] != 42 {
		t.Fatalf("A3 = %d", res.Final.A[3])
	}
	if res.Stats.Instructions != 4 {
		t.Fatalf("instructions = %d", res.Stats.Instructions)
	}
	if _, err := ruu.Run(ruu.Config{}, "bogus"); err == nil {
		t.Error("Run accepted invalid assembly")
	}
	if _, err := ruu.Run(ruu.Config{Engine: "bogus"}, "halt"); err == nil {
		t.Error("Run accepted an unknown engine")
	}
}

// TestFloatHelpers round-trip.
func TestFloatHelpers(t *testing.T) {
	for _, f := range []float64{0, 1.5, -3.25, 1e300} {
		if got := ruu.Float(ruu.FloatBits(f)); got != f {
			t.Errorf("round trip %g -> %g", f, got)
		}
	}
}

// TestReferenceHelper: the golden-reference entry point.
func TestReferenceHelper(t *testing.T) {
	u, err := ruu.Assemble(`
    lsi S1, 9
    trap
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	st, res, err := ruu.Reference(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || st.S[1] != 9 {
		t.Fatalf("res=%+v S1=%d", res, st.S[1])
	}
}

// TestSpeculationPlusExternalInterrupt: an asynchronous interrupt while
// speculative wrong-path work is in flight must still land on a precise
// boundary and resume to a correct result.
func TestSpeculationPlusExternalInterrupt(t *testing.T) {
	src := `
.array buf 16 3
    lai   A0, 30
    lai   A1, 0
loop:
    addai A0, A0, -1
    lda   A2, =buf(A1)
    adda  A3, A3, A2
    sta   A3, =buf(A1)
    addai A1, A1, 1
    janz  loop
    halt
`
	u, err := ruu.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, refRes, err := ruu.Reference(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{7, 50, 333} {
		cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 16}
		cfg.Machine = machine.Config{Speculate: true}
		m, err := ruu.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.ScheduleExternal(at)
		m.SetHandler(func(st *ruu.State, ev ruu.InterruptEvent) ruu.InterruptAction {
			if !ev.Precise {
				t.Error("imprecise external event on the RUU")
			}
			return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		st := ruu.NewState(u)
		res, err := m.Run(u.Prog, st)
		if err != nil {
			t.Fatalf("at=%d: %v", at, err)
		}
		if res.Trap != nil {
			t.Fatalf("at=%d: %v", at, res.Trap)
		}
		if res.Stats.Instructions != refRes.Executed {
			t.Errorf("at=%d: executed %d, want %d", at, res.Stats.Instructions, refRes.Executed)
		}
		if !st.EqualRegs(ref) {
			t.Errorf("at=%d: registers differ: %v", at, st.DiffRegs(ref))
		}
	}
}

// TestLIWraparound: with 3-bit counters and 1000 sequential instances of
// one register, the LI counter wraps many times; correctness must hold
// under every engine that uses instance counting.
func TestLIWraparound(t *testing.T) {
	var b strings.Builder
	b.WriteString("    lai A0, 200\n    lai A1, 0\nloop:\n    addai A0, A0, -1\n")
	// Five instances of A1 per iteration -> LI wraps every ~1.6 iterations.
	for i := 0; i < 5; i++ {
		b.WriteString("    addai A1, A1, 1\n")
	}
	b.WriteString("    janz loop\n    halt\n")
	u, err := ruu.Assemble(b.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{1, 2, 3} {
		for _, spec := range []bool{false, true} {
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 10, CounterBits: bits}
			cfg.Machine.Speculate = spec
			m, err := ruu.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := ruu.NewState(u)
			res, err := m.Run(u.Prog, st)
			if err != nil {
				t.Fatalf("bits=%d spec=%v: %v", bits, spec, err)
			}
			if res.Trap != nil {
				t.Fatalf("bits=%d spec=%v: %v", bits, spec, res.Trap)
			}
			if st.A[1] != 1000 {
				t.Fatalf("bits=%d spec=%v: A1 = %d, want 1000", bits, spec, st.A[1])
			}
		}
	}
}
