package ruu_test

import (
	"fmt"

	"ruu"
)

// ExampleRun shows the one-call path: assemble, build an RUU machine,
// run, and read the result.
func ExampleRun() {
	res, err := ruu.Run(ruu.Config{Engine: ruu.EngineRUU, Entries: 12}, `
    lai  A1, 20
    lai  A2, 22
    adda A3, A1, A2
    halt
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("A3 =", res.Final.A[3])
	fmt.Println("instructions =", res.Stats.Instructions)
	// Output:
	// A3 = 42
	// instructions = 4
}

// ExampleNewMachine_preciseInterrupt demonstrates demand paging: the
// fault reaches the RUU head with precise state, the handler maps the
// page, and execution resumes at the faulting instruction.
func ExampleNewMachine_preciseInterrupt() {
	unit, err := ruu.Assemble(`
.word slot 0
    lai A1, 7
    sta A1, =slot(A7)
    lda A2, =slot(A7)
    halt
`)
	if err != nil {
		panic(err)
	}
	st := ruu.NewState(unit)
	st.Mem.Unmap(unit.Symbols["slot"]) // the page is not resident

	m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 8})
	if err != nil {
		panic(err)
	}
	m.SetHandler(func(s *ruu.State, ev ruu.InterruptEvent) ruu.InterruptAction {
		fmt.Printf("page fault at pc=%d, precise=%v\n", ev.Trap.PC, ev.Precise)
		s.Mem.Map(ev.Trap.Addr)
		return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
	})
	res, err := m.Run(unit.Prog, st)
	if err != nil || res.Trap != nil {
		panic(fmt.Sprint(err, res.Trap))
	}
	fmt.Println("A2 =", st.A[2])
	// Output:
	// page fault at pc=1, precise=true
	// A2 = 7
}

// ExampleSweep reproduces two rows of the paper's Table 4 shape: the RUU
// speedup grows with its size.
func ExampleSweep() {
	rows, err := ruu.Sweep(ruu.Config{Engine: ruu.EngineRUU, Bypass: ruu.BypassFull}, []int{4, 15})
	if err != nil {
		panic(err)
	}
	fmt.Println(rows[1].Speedup > rows[0].Speedup)
	// Output:
	// true
}
